"""A small combinator DSL for building programs.

Hand-writing generator segments is flexible but verbose for the common
shapes.  The DSL covers them:

    prog = (program("client")
            .call("db", "Update", ("item", 1), export="ok", guess=True)
            .when("ok")
            .call("fs", "Write", ("file", "x"), export="r", guess=True)
            .emit("display", "done")
            .build())

``.call(..., guess=...)`` both adds the segment and marks it for
optimistic forking, so ``prog.plan`` is ready to pass to
:meth:`~repro.core.system.OptimisticSystem.add_program`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ProgramError
from repro.csp.effects import Call, Compute, Emit, Send
from repro.csp.plan import ForkSpec, ParallelizationPlan
from repro.csp.process import Program, Segment

_MISSING = object()


@dataclass
class BuiltProgram:
    """A program plus the plan its builder accumulated."""

    program: Program
    plan: ParallelizationPlan

    def add_to(self, system) -> None:
        """Register on an Optimistic- or SequentialSystem."""
        try:
            system.add_program(self.program, self.plan)
        except TypeError:
            system.add_program(self.program)


class ProgramBuilder:
    """Fluent builder; each step becomes one segment."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._segments: List[Segment] = []
        self._plan = ParallelizationPlan()
        self._condition_key: Optional[str] = None
        self._initial_state: Dict[str, Any] = {}
        self._counter = 0

    # ------------------------------------------------------------- plumbing

    def _next_name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _guarded(self, fn):
        """Wrap a segment body so `.when(key)` conditions apply."""
        key = self._condition_key

        def wrapper(state):
            if key is not None and not state.get(key):
                return
                yield  # pragma: no cover - generator marker
            yield from fn(state)

        return wrapper

    # ----------------------------------------------------------------- steps

    def initial(self, **state: Any) -> "ProgramBuilder":
        """Seed the program's initial state."""
        self._initial_state.update(state)
        return self

    def when(self, key: str) -> "ProgramBuilder":
        """Subsequent steps only run while ``state[key]`` is truthy."""
        self._condition_key = key
        return self

    def always(self) -> "ProgramBuilder":
        """Cancel a prior :meth:`when`."""
        self._condition_key = None
        return self

    def call(self, dst: str, op: str, args: Tuple[Any, ...] = (),
             *, export: str, guess: Any = _MISSING,
             compute: float = 0.0, name: Optional[str] = None,
             timeout: Optional[float] = None) -> "ProgramBuilder":
        """Blocking call whose result is stored under ``export``.

        Passing ``guess`` marks the segment for optimistic forking with a
        constant predictor (conditioned steps guess ``export=None`` when
        the condition is off — matching the skip path).
        """
        seg_name = name or self._next_name("call")
        cond = self._condition_key

        def body(state):
            if compute > 0:
                yield Compute(compute)
            state[export] = yield Call(dst, op, tuple(args))

        seg_fn = self._guarded_with_export(body, export)
        self._segments.append(
            Segment(name=seg_name, fn=seg_fn, exports=(export,),
                    meta={"kind": "dsl", "steps": (
                        {"kind": "call", "dst": dst, "op": op,
                         "export": export, "condition": cond},
                    )}))
        if guess is not _MISSING:
            guessed_value = guess

            def predictor(state, _cond=cond, _g=guessed_value):
                if _cond is not None and not state.get(_cond):
                    return {export: None}
                return {export: _g}

            self._plan.add(seg_name, ForkSpec(predictor=predictor,
                                              timeout=timeout,
                                              copy_state=False))
        return self

    def _guarded_with_export(self, fn, export: str):
        key = self._condition_key

        def wrapper(state):
            if key is not None and not state.get(key):
                state[export] = None
                return
                yield  # pragma: no cover - generator marker
            yield from fn(state)

        return wrapper

    def send(self, dst: str, op: str, args: Tuple[Any, ...] = (),
             *, name: Optional[str] = None) -> "ProgramBuilder":
        """One-way send (merged into the preceding/its own segment)."""
        seg_name = name or self._next_name("send")

        def body(state):
            yield Send(dst, op, tuple(args))

        self._segments.append(
            Segment(name=seg_name, fn=self._guarded(body),
                    meta={"kind": "dsl", "steps": (
                        {"kind": "send", "dst": dst, "op": op,
                         "condition": self._condition_key},
                    )}))
        return self

    def emit(self, sink: str, payload: Any = None,
             *, from_state: Optional[str] = None,
             name: Optional[str] = None) -> "ProgramBuilder":
        """External output; ``from_state`` emits a state value instead."""
        seg_name = name or self._next_name("emit")

        def body(state):
            value = state[from_state] if from_state is not None else payload
            yield Emit(sink, value)

        self._segments.append(
            Segment(name=seg_name, fn=self._guarded(body),
                    meta={"kind": "dsl", "steps": (
                        {"kind": "emit", "sink": sink,
                         "from_state": from_state,
                         "condition": self._condition_key},
                    )}))
        return self

    def compute(self, duration: float,
                *, name: Optional[str] = None) -> "ProgramBuilder":
        seg_name = name or self._next_name("compute")

        def body(state):
            yield Compute(duration)

        self._segments.append(
            Segment(name=seg_name, fn=self._guarded(body),
                    meta={"kind": "dsl", "steps": (
                        {"kind": "compute",
                         "condition": self._condition_key},
                    )}))
        return self

    def step(self, fn: Callable, *, exports: Tuple[str, ...] = (),
             name: Optional[str] = None) -> "ProgramBuilder":
        """Escape hatch: a raw generator segment."""
        seg_name = name or self._next_name("step")
        self._segments.append(
            Segment(name=seg_name, fn=self._guarded(fn), exports=exports,
                    meta={"kind": "dsl", "steps": (
                        {"kind": "step", "fn": fn,
                         "condition": self._condition_key},
                    )}))
        return self

    # ----------------------------------------------------------------- build

    def build(self) -> BuiltProgram:
        if not self._segments:
            raise ProgramError(f"program {self.name!r} has no steps")
        program = Program(self.name, self._segments,
                          initial_state=dict(self._initial_state))
        # A fork on the final segment has no continuation to overlap with;
        # drop it rather than bother the caller.
        last = self._segments[-1].name
        self._plan.forks.pop(last, None)
        self._plan.validate(program)
        return BuiltProgram(program=program, plan=self._plan)


def program(name: str) -> ProgramBuilder:
    """Start building a program named ``name``."""
    return ProgramBuilder(name)
