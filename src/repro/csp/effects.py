"""Effects: the only way segment code interacts with the world.

A segment is a Python generator that *yields* effect objects and receives
their results back through ``send``.  Keeping all interaction in effects is
what makes threads replayable: to roll a thread back, the runtime re-runs the
generator and serves the logged results of every non-deterministic effect
(:class:`Call` returns, :class:`Receive`, :class:`GetTime`), while
suppressing the re-execution of already-performed side effects
(:class:`Send`, :class:`Reply`, :class:`Emit`).

Determinism contract: given the same initial state and the same effect
results, a segment must yield the same effect sequence.  Violations are
detected during replay and raised as
:class:`~repro.errors.DeterminismError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple


class Effect:
    """Base class for all yieldable effects."""

    #: True when the effect's result depends on the environment and must be
    #: logged for replay.
    nondeterministic = False
    #: True when the effect mutates the outside world and must be suppressed
    #: during replay (it already happened).
    side_effect = False


@dataclass
class Call(Effect):
    """Blocking remote procedure call; resumes with the reply value.

    Under the optimistic runtime with call streaming enabled, the blocking
    wait is what gets forked away (§2 of the paper).
    """

    dst: str
    op: str
    args: Tuple[Any, ...] = ()
    size: int = 1

    nondeterministic = True
    side_effect = True  # the request message is a side effect


@dataclass
class Send(Effect):
    """One-way asynchronous message; resumes immediately with ``None``."""

    dst: str
    op: str
    args: Tuple[Any, ...] = ()
    size: int = 1

    side_effect = True


@dataclass
class Receive(Effect):
    """Receive the next incoming request; resumes with a
    :class:`~repro.csp.payloads.Request`.

    ``ops`` optionally restricts which operation names may be delivered.
    """

    ops: Optional[Tuple[str, ...]] = None

    nondeterministic = True


@dataclass
class Reply(Effect):
    """Reply to a previously received call request."""

    request: Any  # a payloads.Request produced by Receive
    value: Any = None
    size: int = 1

    side_effect = True


@dataclass
class Compute(Effect):
    """Consume ``duration`` units of virtual CPU time.

    ``work`` optionally attaches *real* labor — a callable taking a
    :class:`~repro.exec.api.WorkContext` — that runs on a pool worker
    when the system uses a real executor backend (threads/processes) and
    is skipped entirely in virtual time.  Payloads must be effect-free
    (their return value is discarded; all visible actions still go
    through effects) and cooperative: route blocking waits through
    ``ctx.sleep`` and call ``ctx.check()`` inside long loops so an abort
    can cancel them at the next effect boundary.  Under
    :class:`~repro.exec.pool.ProcessPoolBackend` the payload must be
    picklable (lint rule SA501).
    """

    duration: float = 0.0
    work: Optional[Any] = None


@dataclass
class Emit(Effect):
    """Deliver ``payload`` to an external, unrecoverable sink.

    External output is the paper's output-commit boundary: the optimistic
    runtime buffers emissions until their guard set empties (§3.2).
    """

    sink: str
    payload: Any = None
    size: int = 1

    side_effect = True


@dataclass
class GetTime(Effect):
    """Read the current virtual time.  Logged for replay determinism."""

    nondeterministic = True
