"""Parallelization plans: which segment boundaries to fork, and how.

The paper assumes "some mechanism by which the compiler is told that it is
desirable to parallelize S1 and S2 — programmer supplied pragmas, run-time
profiling, static analysis, or a combination" (§2).  A
:class:`ParallelizationPlan` is that mechanism made explicit: per guessed
segment, a :class:`ForkSpec` with the predictor for the values the segment
exports, an optional custom verifier, and the fork timeout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

from repro.errors import ProgramError
from repro.csp.process import Program

#: Guesses the exported values of a segment from the state at the fork point.
Predictor = Callable[[Dict[str, Any]], Dict[str, Any]]
#: Decides whether actual exports satisfy the guess (default: equality).
Verifier = Callable[[Dict[str, Any], Dict[str, Any]], bool]


def constant_predictor(values: Mapping[str, Any]) -> Predictor:
    """Predictor that always guesses the same values (e.g. ``{"ok": True}``)."""
    frozen = dict(values)

    def predict(state: Dict[str, Any]) -> Dict[str, Any]:
        return dict(frozen)

    return predict


#: Sentinel distinguishing "export absent" from "export is None" in the
#: verifier.  A guessed ``None`` must NOT verify against a missing key: the
#: segment never produced the export, so the guess has nothing to match.
_MISSING = object()


def equality_verifier(guessed: Dict[str, Any], actual: Dict[str, Any]) -> bool:
    """Default verifier: every guessed value must equal the actual value.

    A guessed key that is absent from ``actual`` fails verification even
    when the guessed value is ``None`` — absence means the left thread
    never wrote the export, which is a value fault, not a lucky match.
    """
    return all(actual.get(k, _MISSING) == v for k, v in guessed.items())


@dataclass
class ForkSpec:
    """How to optimistically run one segment in parallel with its suffix.

    Attributes
    ----------
    predictor:
        Guesses the segment's exports from the fork-point state.  A plain
        dict is accepted and wrapped in :func:`constant_predictor`.
    verifier:
        ``verifier(guessed, actual) -> bool``; defaults to equality on all
        guessed keys (the paper's value-fault check).
    timeout:
        Virtual-time bound on the left thread (guess includes termination of
        S1, §3.2).  ``None`` uses the system default.
    copy_state:
        Whether the right thread needs its own copy of the state.  The paper
        notes the copy is unnecessary when there is no anti-dependency
        (S1 reads nothing S2 overwrites) — call streaming's case.  We always
        copy for safety unless told otherwise; this flag only affects the
        modelled fork cost, not correctness.
    """

    predictor: Any
    verifier: Verifier = equality_verifier
    timeout: Optional[float] = None
    copy_state: bool = True

    def __post_init__(self) -> None:
        if isinstance(self.predictor, Mapping):
            self.predictor = constant_predictor(self.predictor)
        if not callable(self.predictor):
            raise ProgramError("ForkSpec.predictor must be a mapping or callable")

    def predict(self, state: Dict[str, Any]) -> Dict[str, Any]:
        return dict(self.predictor(state))


@dataclass
class ParallelizationPlan:
    """Maps guessed-segment name -> :class:`ForkSpec` for one program."""

    forks: Dict[str, ForkSpec] = field(default_factory=dict)

    def fork_for(self, segment_name: str) -> Optional[ForkSpec]:
        return self.forks.get(segment_name)

    def add(self, segment_name: str, spec: ForkSpec) -> "ParallelizationPlan":
        self.forks[segment_name] = spec
        return self

    def validate(self, program: Program) -> None:
        """Check every fork refers to a real, non-final segment with exports
        covered by its predictor (at least structurally resolvable)."""
        names = [s.name for s in program.segments]
        for seg_name in self.forks:
            if seg_name not in names:
                raise ProgramError(
                    f"plan forks unknown segment {seg_name!r} "
                    f"(program {program.name!r} has {names})"
                )
            if seg_name == names[-1]:
                raise ProgramError(
                    f"plan forks final segment {seg_name!r}: nothing follows "
                    "the join point, so there is no S2 to run optimistically"
                )

    def fork_count(self) -> int:
        return len(self.forks)
