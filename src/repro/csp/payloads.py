"""CSP-level message payloads.

These are the application-visible messages between processes.  The
optimistic runtime wraps them in a guard-tagged envelope
(:mod:`repro.core.messages`); the pessimistic interpreter sends them bare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple


@dataclass(frozen=True)
class CallRequest:
    """The request half of a blocking call."""

    op: str
    args: Tuple[Any, ...]
    call_id: int
    reply_to: str
    size: int = 1

    def data(self) -> Tuple[str, Tuple[Any, ...]]:
        """The trace-visible data values of this message."""
        return (self.op, self.args)


@dataclass(frozen=True)
class CallResponse:
    """The reply half of a blocking call."""

    call_id: int
    value: Any
    op: str = ""
    size: int = 1

    def data(self) -> Tuple[str, Any]:
        return (self.op, self.value)


@dataclass(frozen=True)
class OneWay:
    """A one-way send (no reply expected)."""

    op: str
    args: Tuple[Any, ...]
    size: int = 1

    def data(self) -> Tuple[str, Tuple[Any, ...]]:
        return (self.op, self.args)


@dataclass(frozen=True)
class Request:
    """What a server's :class:`~repro.csp.effects.Receive` resumes with.

    ``call_id``/``reply_to`` are set for two-way calls and ``None`` for
    one-way sends; :class:`~repro.csp.effects.Reply` is only legal on the
    former.
    """

    src: str
    op: str
    args: Tuple[Any, ...]
    call_id: Optional[int] = None
    reply_to: Optional[str] = None

    @property
    def is_call(self) -> bool:
        return self.call_id is not None

    def data(self) -> Tuple[str, Tuple[Any, ...]]:
        return (self.op, self.args)
