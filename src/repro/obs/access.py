"""Opt-in access-set recording and WW/RW/WR conflict heatmaps.

ROADMAP item 1 (read/write-set conflict prediction) needs an empirical
substrate: which state keys, channels and sinks does each *concurrently
live* segment actually touch, and where do overlapping segments collide?
This module records exactly that, off by default and attached per system
(``OptimisticSystem(access=AccessTracker())``):

* :class:`ObservedState` — a :class:`~repro.core.snapshot.CowState`
  subclass that additionally records the key of every read and write into
  the segment record currently attached to it.  With no tracker the
  runtime never instantiates it, so the default state keeps plain dict
  read speed.
* :class:`AccessTracker` — one :class:`SegmentAccess` record per segment
  execution (including replays, flagged), seeded with the segment's
  *static* effect summary (:mod:`repro.analyze.summary`, i.e. the
  ``Segment.meta`` route) and grown by runtime observation: state keys
  from :class:`ObservedState`, channel keys from the send/recv paths,
  sink keys from emits.
* :func:`conflicts` — aggregates WW/WR/RW pairs per key over every pair
  of time-overlapping records from different threads, the raw material of
  ``python -m repro explain --conflicts``.

Key namespaces: a state key ``k`` of process ``P`` becomes ``P.k`` (state
is process-local, so only same-process thread overlap can conflict on
it); a message over channel ``src→dst`` op ``o`` is ``chan:src->dst.o``
(written by the sender, read by the receiver); sink output is
``sink:name``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.snapshot import CowState

# ------------------------------------------------------------------ records


@dataclass
class SegmentAccess:
    """Everything one segment execution touched, with its live interval."""

    process: str
    tid: int
    seg: int
    name: str
    start: float                    #: virtual time the segment began
    end: Optional[float] = None     #: virtual time it ended (None while open)
    outcome: str = "open"           #: completed / terminated / destroyed /
                                    #: rolled_back
    replaying: bool = False         #: began as rollback replay (not live)
    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "process": self.process, "tid": self.tid, "seg": self.seg,
            "name": self.name, "start": self.start, "end": self.end,
            "outcome": self.outcome, "replaying": self.replaying,
            "reads": sorted(self.reads), "writes": sorted(self.writes),
        }


def chan_key(src: str, dst: str, op: str) -> str:
    """Canonical conflict key for one directed channel operation."""
    return f"chan:{src}->{dst}.{op}"


def sink_key(name: str) -> str:
    return f"sink:{name}"


def _is_global_key(key: str) -> bool:
    return key.startswith("chan:") or key.startswith("sink:")


# ----------------------------------------------------------- observed state


class ObservedState(CowState):
    """Live state that reports key reads/writes to an attached record.

    The segment record is swapped at segment boundaries by the tracker;
    with no record attached (``_rec is None`` — e.g. during rollback
    restoration) accesses pass through unrecorded, so replay bookkeeping
    never pollutes the access sets.
    """

    __slots__ = ("_rec",)

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        self._rec: Optional[SegmentAccess] = None
        super().__init__(*args, **kwargs)

    # -- reads ------------------------------------------------------------

    def __getitem__(self, key: Any) -> Any:
        rec = self._rec
        if rec is not None:
            rec.reads.add(key)
        return super().__getitem__(key)

    def get(self, key: Any, default: Any = None) -> Any:
        rec = self._rec
        if rec is not None:
            rec.reads.add(key)
        return super().get(key, default)

    def __contains__(self, key: Any) -> bool:
        rec = self._rec
        if rec is not None:
            rec.reads.add(key)
        return super().__contains__(key)

    # -- writes -----------------------------------------------------------

    def __setitem__(self, key: Any, value: Any) -> None:
        rec = self._rec
        if rec is not None:
            rec.writes.add(key)
        super().__setitem__(key, value)

    def __delitem__(self, key: Any) -> None:
        rec = self._rec
        if rec is not None:
            rec.writes.add(key)
        super().__delitem__(key)

    def setdefault(self, key: Any, default: Any = None) -> Any:
        rec = self._rec
        if rec is not None:
            rec.reads.add(key)
            rec.writes.add(key)
        return super().setdefault(key, default)

    def pop(self, *args: Any) -> Any:
        rec = self._rec
        if rec is not None and args:
            rec.writes.add(args[0])
        return super().pop(*args)

    def update(self, *args: Any, **kwargs: Any) -> None:
        rec = self._rec
        if rec is not None:
            if len(args) == 1 and isinstance(args[0], dict):
                rec.writes.update(args[0])
            rec.writes.update(kwargs)
        super().update(*args, **kwargs)


# ----------------------------------------------------------------- tracker


class AccessTracker:
    """Per-segment access recording for one system (opt-in)."""

    def __init__(self) -> None:
        self.records: List[SegmentAccess] = []
        #: (process, seg index) -> (static reads, static writes), seeded
        #: from the analyzer's effect summaries at ``add_program`` time
        self._static: Dict[Tuple[str, int], Tuple[frozenset, frozenset]] = {}

    # -- static seeding ---------------------------------------------------

    def seed_program(self, program: Any) -> None:
        """Pre-seed access sets from the program's static summaries.

        Best-effort: opaque segments simply contribute nothing static and
        are still observed at runtime.
        """
        try:
            from repro.analyze.summary import summarize_program

            summary = summarize_program(program)
        except Exception:
            return
        name = program.name
        for s in summary.segments:
            reads = set(s.reads)
            writes = set(s.writes)
            for dst, op in (*s.calls, *s.sends):
                writes.add(chan_key(name, dst, op))
            for snk in s.emits:
                writes.add(sink_key(snk))
            self._static[(name, s.index)] = (frozenset(reads),
                                             frozenset(writes))

    # -- state & segment lifecycle ---------------------------------------

    def observe(self, state: CowState) -> ObservedState:
        """Wrap a live state so its key accesses are recorded."""
        if isinstance(state, ObservedState):
            return state
        return ObservedState(state)

    def begin_segment(self, state: Any, *, process: str, tid: int, seg: int,
                      name: str, start: float,
                      replaying: bool = False) -> SegmentAccess:
        rec = SegmentAccess(process=process, tid=tid, seg=seg, name=name,
                            start=start, replaying=replaying)
        static = self._static.get((process, seg))
        if static is not None:
            rec.reads |= static[0]
            rec.writes |= static[1]
        self.records.append(rec)
        if isinstance(state, ObservedState):
            state._rec = rec
        return rec

    def end_segment(self, rec: SegmentAccess, end: float, outcome: str,
                    state: Any = None) -> None:
        rec.end = end
        rec.outcome = outcome
        if isinstance(state, ObservedState) and state._rec is rec:
            state._rec = None

    # -- channel / sink observation ---------------------------------------

    def note_send(self, rec: Optional[SegmentAccess], src: str, dst: str,
                  op: str) -> None:
        if rec is not None:
            rec.writes.add(chan_key(src, dst, op))

    def note_recv(self, rec: Optional[SegmentAccess], src: str, dst: str,
                  op: str) -> None:
        if rec is not None:
            rec.reads.add(chan_key(src, dst, op))

    def note_emit(self, rec: Optional[SegmentAccess], sink: str) -> None:
        if rec is not None:
            rec.writes.add(sink_key(sink))

    # -- analysis ----------------------------------------------------------

    def conflicts(self) -> "ConflictMatrix":
        return conflicts(self.records)

    def to_dict(self) -> Dict[str, Any]:
        return {"records": [r.to_dict() for r in self.records]}


# ---------------------------------------------------------------- conflicts


class ConflictMatrix:
    """Per-key WW/WR/RW conflict counts over concurrent segment pairs."""

    KINDS = ("WW", "WR", "RW")

    def __init__(self) -> None:
        #: key -> {"WW": n, "WR": n, "RW": n}
        self.cells: Dict[str, Dict[str, int]] = {}
        self.pairs_examined = 0
        self.records = 0

    def add(self, key: str, kind: str) -> None:
        cell = self.cells.setdefault(key, dict.fromkeys(self.KINDS, 0))
        cell[kind] += 1

    def total(self, key: str) -> int:
        return sum(self.cells.get(key, {}).values())

    def __bool__(self) -> bool:
        return bool(self.cells)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "records": self.records,
            "pairs_examined": self.pairs_examined,
            "keys": {k: dict(v) for k, v in sorted(self.cells.items())},
        }

    def render(self, limit: int = 30) -> str:
        """ASCII heatmap: hottest conflict keys first."""
        if not self.cells:
            return ("no conflicts: no overlapping segments touched a "
                    "common key")
        rows = sorted(self.cells.items(),
                      key=lambda kv: (-sum(kv[1].values()), kv[0]))
        width = max(3, max(len(k) for k, _ in rows[:limit]))
        out = [f"{'key':<{width}}  {'WW':>5} {'WR':>5} {'RW':>5} {'total':>6}"]
        out.append("-" * (width + 26))
        for key, cell in rows[:limit]:
            out.append(
                f"{key:<{width}}  {cell['WW']:>5} {cell['WR']:>5} "
                f"{cell['RW']:>5} {sum(cell.values()):>6}")
        if len(rows) > limit:
            out.append(f"... and {len(rows) - limit} more keys")
        return "\n".join(out)


def _qualify(rec: SegmentAccess) -> Tuple[Set[str], Set[str]]:
    """Record's access sets with process-local state keys disambiguated."""
    reads = {k if _is_global_key(k) else f"{rec.process}.{k}"
             for k in rec.reads}
    writes = {k if _is_global_key(k) else f"{rec.process}.{k}"
              for k in rec.writes}
    return reads, writes


def _overlaps(a: SegmentAccess, b: SegmentAccess) -> bool:
    a_end = a.end if a.end is not None else float("inf")
    b_end = b.end if b.end is not None else float("inf")
    return a.start < b_end and b.start < a_end


def conflicts(records: List[SegmentAccess]) -> ConflictMatrix:
    """WW/WR/RW conflict counts over every concurrent record pair.

    For a pair ordered by start time (``a`` first): a key both write is
    ``WW``; written by ``a`` and read by ``b`` is ``WR`` (the reader saw
    speculative output); read by ``a`` and written by ``b`` is ``RW``
    (the earlier read may be invalidated).  Pairs must come from
    different threads and overlap in virtual time — sequential segments
    of one thread can never conflict with themselves.
    """
    matrix = ConflictMatrix()
    touched = [(r, *_qualify(r)) for r in records if r.reads or r.writes]
    matrix.records = len(touched)
    for i, (a, ar, aw) in enumerate(touched):
        for (b, br, bw) in touched[i + 1:]:
            if a.process == b.process and a.tid == b.tid:
                continue
            if not _overlaps(a, b):
                continue
            first_r, first_w, second_r, second_w = (
                (ar, aw, br, bw) if a.start <= b.start else (br, bw, ar, aw))
            matrix.pairs_examined += 1
            for key in first_w & second_w:
                matrix.add(key, "WW")
            for key in first_w & second_r:
                matrix.add(key, "WR")
            for key in first_r & second_w:
                matrix.add(key, "RW")
    return matrix
