"""Trace exporters: JSONL, Chrome trace-event JSON, prometheus text.

All exporters are pure functions of their input and emit canonical JSON
(sorted keys, fixed separators), so exporting the same deterministic run
twice produces byte-identical files — the property the golden tests pin.

Chrome trace layout (open in Perfetto / ``chrome://tracing``):

* one *process* track per simulated process (pid = rank in sorted name
  order);
* within each process, tid 0 is the instant-event lane, tids 10+ are
  execution lanes (one per runtime thread / server), and tids 1000+ hold
  one lane **per guess**, so overlapping speculation shows as stacked
  in-flight guess bars;
* virtual time maps 1 unit → 1 ms (the ``ts`` field is microseconds).

Dual-clock traces additionally get one synthetic **wall** process (the
highest pid) holding the wall-clock timeline: one tid per pool worker
(plus a ``driver`` lane for guess windows), so spans executed by
different workers never collapse into a single lane and real overlap,
queue waits and cancelled labor are visible at a glance.  Wall events
carry ``cat="wall:<kind>"`` and their ``ts`` is wall-clock microseconds
relative to the first observed labor.  The wall lane is strictly
additive: dropping every event with the wall pid leaves the virtual-lane
events byte-identical to a virtual-backend export of the same run.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Union

from repro.sim.stats import Stats

from .metrics import MetricsRegistry
from .spans import EVENT_KINDS, GUESS, Span

#: One unit of virtual time becomes 1000 Chrome-trace microseconds (1 ms).
TS_SCALE = 1000.0

_JSON_KW = dict(sort_keys=True, separators=(",", ":"))

#: Chrome events lane and the base tid for execution / guess lanes.
_EVENTS_TID = 0
_EXEC_TID_BASE = 10
_GUESS_TID_BASE = 1000

#: Wall-clock seconds become Chrome-trace microseconds on the wall lane.
WALL_TS_SCALE = 1e6
#: Display name of the synthetic wall-clock process lane.
WALL_PROCESS = "wall"


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """One canonical-JSON span per line."""
    return "".join(json.dumps(span.to_dict(), **_JSON_KW) + "\n"
                   for span in spans)


def write_jsonl_trace(spans: Iterable[Span], path: str) -> None:
    with open(path, "w") as fh:
        fh.write(spans_to_jsonl(spans))


def _display(process: str) -> str:
    return process if process else "sim"


def chrome_trace(spans: Iterable[Span]) -> Dict[str, Any]:
    """Build a Chrome trace-event object (``{"traceEvents": [...]}``)."""
    spans = list(spans)
    processes = sorted({_display(s.process) for s in spans})
    pid_of = {name: i + 1 for i, name in enumerate(processes)}

    events: List[Dict[str, Any]] = []
    for name in processes:
        pid = pid_of[name]
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "args": {"name": name}})
        events.append({"ph": "M", "name": "process_sort_index", "pid": pid,
                       "tid": 0, "args": {"sort_index": pid}})

    # Lane assignment: one tid per guess (stacked speculation), one per
    # execution thread, everything instant on the shared events lane.
    guess_lanes: Dict[str, int] = {}       # process -> next free guess lane
    thread_names: Dict[Any, str] = {}      # (pid, tid) -> lane label
    span_events: List[Dict[str, Any]] = []
    for span in spans:
        pid = pid_of[_display(span.process)]
        args = {"sid": span.sid, "kind": span.kind}
        args.update(span.attrs)
        if span.kind == GUESS:
            lane = guess_lanes.get(span.process, 0)
            guess_lanes[span.process] = lane + 1
            tid = _GUESS_TID_BASE + lane
            thread_names.setdefault((pid, tid), f"guess {span.name}")
        elif span.kind in EVENT_KINDS or span.instant:
            tid = _EVENTS_TID
            thread_names.setdefault((pid, tid), "events")
        else:
            tid = _EXEC_TID_BASE + int(span.attrs.get("tid", 0) or 0)
            thread_names.setdefault((pid, tid),
                                    f"thread {tid - _EXEC_TID_BASE}")
        if span.instant:
            span_events.append({
                "ph": "i", "s": "t", "name": span.name or span.kind,
                "cat": span.kind, "pid": pid, "tid": tid,
                "ts": span.start * TS_SCALE, "args": args,
            })
        else:
            end = span.end if span.end is not None else span.start
            span_events.append({
                "ph": "X", "name": span.name or span.kind,
                "cat": span.kind, "pid": pid, "tid": tid,
                "ts": span.start * TS_SCALE,
                "dur": (end - span.start) * TS_SCALE, "args": args,
            })

    # Dual-clock: wall-annotated spans get a second timeline under one
    # synthetic process, one lane per worker — never collapsed.  Strictly
    # additive (own pid, appended after the virtual lanes), so filtering
    # the wall pid out recovers the virtual-backend export byte-for-byte.
    wall_spans = [s for s in spans
                  if s.wall_start is not None and s.wall_end is not None]
    if wall_spans:
        wall_pid = len(processes) + 1
        events.append({"ph": "M", "name": "process_name", "pid": wall_pid,
                       "tid": 0, "args": {"name": WALL_PROCESS}})
        events.append({"ph": "M", "name": "process_sort_index",
                       "pid": wall_pid, "tid": 0,
                       "args": {"sort_index": wall_pid}})
        workers = sorted({s.worker or "?" for s in wall_spans})
        wall_tid = {name: i for i, name in enumerate(workers)}
        epoch = min(s.wall_start for s in wall_spans)
        for span in wall_spans:
            tid = wall_tid[span.worker or "?"]
            thread_names.setdefault((wall_pid, tid),
                                    span.worker or "?")
            span_events.append({
                "ph": "X", "name": span.name or span.kind,
                "cat": f"wall:{span.kind}", "pid": wall_pid, "tid": tid,
                "ts": (span.wall_start - epoch) * WALL_TS_SCALE,
                "dur": (span.wall_end - span.wall_start) * WALL_TS_SCALE,
                "args": {"sid": span.sid, "kind": span.kind,
                         "process": _display(span.process),
                         "virtual_start": span.start,
                         "virtual_end": span.end},
            })

    for (pid, tid) in sorted(thread_names):
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": thread_names[(pid, tid)]}})
        events.append({"ph": "M", "name": "thread_sort_index", "pid": pid,
                       "tid": tid, "args": {"sort_index": tid}})
    events.extend(span_events)
    return {"displayTimeUnit": "ms", "traceEvents": events}


def chrome_trace_json(spans: Iterable[Span]) -> str:
    """Canonical (byte-stable) JSON text of :func:`chrome_trace`."""
    return json.dumps(chrome_trace(spans), **_JSON_KW) + "\n"


def write_chrome_trace(spans: Iterable[Span], path: str) -> None:
    with open(path, "w") as fh:
        fh.write(chrome_trace_json(spans))


def prometheus_text(source: Union[MetricsRegistry, Stats, Any]) -> str:
    """Prometheus text dump of a registry, a ``Stats``, or a run result.

    Result objects are inspected for a ``metrics`` registry first, then a
    raw ``stats`` store; a bare ``Stats`` dumps every counter untyped.
    """
    if isinstance(source, MetricsRegistry):
        return source.to_prometheus()
    if isinstance(source, Stats):
        return MetricsRegistry(source).to_prometheus()
    metrics = getattr(source, "metrics", None)
    if isinstance(metrics, MetricsRegistry):
        return metrics.to_prometheus()
    stats = getattr(source, "stats", None)
    if isinstance(stats, Stats):
        return MetricsRegistry(stats).to_prometheus()
    raise TypeError(f"cannot export metrics from {source!r}")
