"""The uniform run-result surface shared by every execution mode.

Five runtimes coexist in this repository (optimistic, sequential,
pipelining, promises, Time Warp) and each grew its own result dataclass
with its own names for "when did the run finish".  :class:`RunResult` is
the common protocol they all now satisfy:

* ``completion_time`` — virtual time the run completed;
* ``stats``           — the :class:`~repro.sim.stats.Stats` backing store;
* ``trace``           — per-message :class:`TraceEvent` list (may be empty);
* ``spans``           — observability spans (empty unless traced).

Renamed attributes keep working through :func:`deprecated_alias`
properties that forward to the new name and raise a
:class:`DeprecationWarning` on *every* access, naming the release in
which the alias will be removed.
"""

from __future__ import annotations

import warnings
from typing import Any, List, Protocol, runtime_checkable

from repro.sim.stats import Stats

from .spans import Span


@runtime_checkable
class RunResult(Protocol):
    """What every execution mode's result object provides."""

    completion_time: float
    stats: Stats
    trace: List[Any]
    spans: List[Span]


def deprecated_alias(owner: str, old: str, new: str, *,
                     removal: str) -> property:
    """A read-only property forwarding ``old`` to ``new``.

    Every access warns (no warn-once suppression: callers migrating code
    should see each remaining use) and the message states the release in
    which the alias disappears, so the deprecation is actionable rather
    than a permanent compatibility shim.
    """

    def getter(self: Any) -> Any:
        warnings.warn(
            f"{owner}.{old} is deprecated and will be removed in "
            f"repro {removal}; use {owner}.{new}",
            DeprecationWarning, stacklevel=2)
        return getattr(self, new)

    getter.__doc__ = (f"Deprecated alias for ``{new}`` "
                      f"(removed in repro {removal}).")
    return property(getter)
