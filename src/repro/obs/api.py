"""The uniform run-result surface shared by every execution mode.

Five runtimes coexist in this repository (optimistic, sequential,
pipelining, promises, Time Warp) and each grew its own result dataclass
with its own names for "when did the run finish".  :class:`RunResult` is
the common protocol they all now satisfy:

* ``completion_time`` — virtual time the run completed;
* ``stats``           — the :class:`~repro.sim.stats.Stats` backing store;
* ``trace``           — per-message :class:`TraceEvent` list (may be empty);
* ``spans``           — observability spans (empty unless traced).

Renamed attributes keep working through :func:`deprecated_alias`
properties that warn once per alias and forward to the new name.
"""

from __future__ import annotations

import warnings
from typing import Any, List, Protocol, Set, Tuple, runtime_checkable

from repro.sim.stats import Stats

from .spans import Span


@runtime_checkable
class RunResult(Protocol):
    """What every execution mode's result object provides."""

    completion_time: float
    stats: Stats
    trace: List[Any]
    spans: List[Span]


_warned_aliases: Set[Tuple[str, str]] = set()


def deprecated_alias(owner: str, old: str, new: str) -> property:
    """A read-only property forwarding ``old`` to ``new``, warning once.

    ``owner`` scopes the warn-once bookkeeping so e.g. two result classes
    that both rename ``makespan`` each get their own single warning.
    """

    def getter(self: Any) -> Any:
        key = (owner, old)
        if key not in _warned_aliases:
            _warned_aliases.add(key)
            warnings.warn(
                f"{owner}.{old} is deprecated; use {owner}.{new}",
                DeprecationWarning, stacklevel=2)
        return getattr(self, new)

    getter.__doc__ = f"Deprecated alias for ``{new}``."
    return property(getter)
