"""Schema validation for span lists and exported trace files.

Used by ``make trace-smoke``, the CLI and the property tests.  The rules
encode the speculation lifecycle invariants:

* span ids are unique and assigned in creation order;
* every span is closed (``end`` set) and no duration is negative;
* every ``guess`` span resolves exactly one way — ``outcome`` is
  ``"commit"`` or ``"abort"`` — unless the run was truncated mid-doubt
  (``truncated`` attr), which callers may forbid via ``strict``;
* dual-clock spans are internally consistent: wall stamps are finite
  numbers, ``wall_end >= wall_start`` whenever both are present, and a
  wall observation names its worker;
* optionally (``dead_workers``), no span carries wall stamps written by a
  worker *after* that worker was declared dead — the telemetry-honesty
  counterpart of the executor's fault recovery (a pool backend exposes
  its declarations as ``backend.dead_workers``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional

from .spans import GUESS, Span


class TraceValidationError(AssertionError):
    """A span list or exported trace violates the schema."""


def _wall_errors(span: Any, where: str) -> List[str]:
    """Dual-clock consistency checks for one span (empty list = ok).

    Accepts anything with ``wall_start``/``wall_end``/``worker``
    attributes or keys so both :class:`Span` objects and decoded JSONL
    records can be checked with the same rules.
    """
    if isinstance(span, dict):
        wall_start = span.get("wall_start")
        wall_end = span.get("wall_end")
        worker = span.get("worker")
        wall_busy = span.get("wall_busy")
    else:
        wall_start = span.wall_start
        wall_end = span.wall_end
        worker = span.worker
        wall_busy = span.wall_busy
    errors: List[str] = []
    for label, value in (("wall_start", wall_start), ("wall_end", wall_end),
                         ("wall_busy", wall_busy)):
        if value is not None and (not isinstance(value, (int, float))
                                  or isinstance(value, bool)
                                  or value != value      # NaN
                                  or value in (float("inf"), float("-inf"))):
            errors.append(f"non-finite {label} ({value!r}): {where}")
    if worker is not None and (not isinstance(worker, str) or not worker):
        errors.append(f"bad worker label ({worker!r}): {where}")
    if (isinstance(wall_start, (int, float)) and not isinstance(wall_start, bool)
            and isinstance(wall_end, (int, float))
            and not isinstance(wall_end, bool)
            and wall_end < wall_start):
        errors.append(
            f"negative wall duration ({wall_start} -> {wall_end}): {where}")
    if (wall_start is not None or wall_end is not None) and worker is None:
        errors.append(f"wall stamps without a worker: {where}")
    if (isinstance(wall_busy, (int, float)) and not isinstance(wall_busy, bool)
            and wall_busy == wall_busy and wall_busy < 0):
        errors.append(f"negative wall_busy ({wall_busy}): {where}")
    if wall_busy is not None and wall_start is None and wall_end is None:
        errors.append(f"wall_busy without wall stamps: {where}")
    return errors


def _dead_worker_errors(span: Any, dead_workers: Mapping[str, float],
                        where: str) -> List[str]:
    """Flag wall stamps written by a worker after it was declared dead.

    ``dead_workers`` maps worker name -> wall (``perf_counter``) time of
    the death declaration, the shape a pool backend exposes as
    ``backend.dead_workers``.  A span whose labor *ended* after its
    worker's declared death claims observations from beyond the grave —
    either the telemetry or the declaration is lying.
    """
    if isinstance(span, dict):
        worker = span.get("worker")
        wall_end = span.get("wall_end")
    else:
        worker = span.worker
        wall_end = span.wall_end
    if worker is None or worker not in dead_workers:
        return []
    died_at = dead_workers[worker]
    if (isinstance(wall_end, (int, float)) and not isinstance(wall_end, bool)
            and wall_end > died_at):
        return [f"wall stamp by dead worker {worker!r} "
                f"({wall_end} > death at {died_at}): {where}"]
    return []


def validate_spans(spans: Iterable[Span], *,
                   strict: bool = False,
                   dead_workers: Optional[Mapping[str, float]] = None
                   ) -> Dict[str, int]:
    """Check span well-formedness; returns summary counts.

    ``strict`` additionally rejects truncated (unresolved) guess spans —
    appropriate for runs that are known to quiesce.  ``dead_workers``
    (worker name -> wall death time) additionally rejects spans stamped
    by a worker after it was declared dead.
    """
    spans = list(spans)
    errors: List[str] = []
    seen_sids = set()
    last_sid = -1
    guesses = commits = aborts = 0
    for span in spans:
        where = f"span sid={span.sid} kind={span.kind} name={span.name!r}"
        if span.sid in seen_sids:
            errors.append(f"duplicate sid: {where}")
        seen_sids.add(span.sid)
        if span.sid <= last_sid:
            errors.append(f"sid out of creation order: {where}")
        last_sid = span.sid
        if span.end is None:
            errors.append(f"unclosed span: {where}")
        elif span.end < span.start:
            errors.append(
                f"negative duration ({span.start} -> {span.end}): {where}")
        errors.extend(_wall_errors(span, where))
        if dead_workers:
            errors.extend(_dead_worker_errors(span, dead_workers, where))
        if span.kind == GUESS:
            guesses += 1
            outcome = span.attrs.get("outcome")
            if outcome == "commit":
                commits += 1
            elif outcome == "abort":
                aborts += 1
            elif span.attrs.get("truncated"):
                if strict:
                    errors.append(f"truncated guess span: {where}")
            else:
                errors.append(
                    f"guess span without commit/abort outcome: {where}")
    if errors:
        raise TraceValidationError(
            f"{len(errors)} trace violations:\n  " + "\n  ".join(errors))
    return {"spans": len(spans), "guesses": guesses,
            "commits": commits, "aborts": aborts}


def validate_chrome(trace: Dict[str, Any]) -> Dict[str, int]:
    """Structural check of a Chrome trace-event object."""
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise TraceValidationError("chrome trace must have 'traceEvents'")
    events = trace["traceEvents"]
    n_complete = n_instant = n_meta = 0
    for ev in events:
        ph = ev.get("ph")
        for key in ("pid", "tid", "name"):
            if key not in ev:
                raise TraceValidationError(f"chrome event missing {key}: {ev}")
        if ph == "X":
            n_complete += 1
            if ev.get("dur", 0) < 0 or "ts" not in ev:
                raise TraceValidationError(f"bad complete event: {ev}")
        elif ph == "i":
            n_instant += 1
            if "ts" not in ev:
                raise TraceValidationError(f"instant event without ts: {ev}")
        elif ph == "M":
            n_meta += 1
        else:
            raise TraceValidationError(f"unexpected phase {ph!r}: {ev}")
    return {"events": len(events), "complete": n_complete,
            "instant": n_instant, "metadata": n_meta}


def validate_jsonl(text: str) -> int:
    """Check a JSONL export parses and carries the span fields.

    Wall-clock fields are optional per record, but when present they must
    satisfy the dual-clock rules (finite stamps, ordered, worker named).
    """
    required = ("sid", "kind", "name", "process", "start", "end")
    count = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceValidationError(f"line {lineno}: bad JSON: {exc}")
        for key in required:
            if key not in record:
                raise TraceValidationError(
                    f"line {lineno}: missing field {key!r}")
        wall_problems = _wall_errors(record, f"line {lineno}")
        if wall_problems:
            raise TraceValidationError("; ".join(wall_problems))
        count += 1
    return count
