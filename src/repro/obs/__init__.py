"""repro.obs — unified observability: spans, typed metrics, exporters.

One layer, three pieces:

* **tracing** (:mod:`.spans`, :mod:`.tracer`): the speculation lifecycle
  as typed spans in virtual time.  Every execution mode emits the same
  schema; the default :data:`NULL_TRACER` records nothing and costs one
  branch on the hot path.
* **metrics** (:mod:`.metrics`): declared counters/gauges/histograms over
  the legacy :class:`~repro.sim.stats.Stats` backing store.
* **export** (:mod:`.export`, :mod:`.validate`): JSONL, Chrome
  trace-event JSON (Perfetto-loadable) and prometheus text, all
  byte-deterministic; plus schema validation for smoke tests.

Two dual-clock extensions ride on the same span schema:

* **wall-clock telemetry** (:mod:`.realtime`): on a real executor
  backend spans also carry ``(wall_start, wall_end, worker)``;
  :func:`pool_report` turns them into per-worker utilization, queue-wait
  and gate-block distributions and the ``speculation_efficiency`` metric
  (``python -m repro profile --wall``).
* **access sets** (:mod:`.access`): an opt-in :class:`AccessTracker`
  records per-segment read/write key sets and aggregates WW/WR/RW
  conflict pairs into a heatmap (``python -m repro explain
  --conflicts``).

Typical use::

    from repro import OptimisticSystem, RecordingTracer, write_chrome_trace
    tracer = RecordingTracer()
    system = OptimisticSystem(tracer=tracer)
    ...
    result = system.run()
    write_chrome_trace(result.spans, "trace.json")
"""

from .access import (AccessTracker, ConflictMatrix, ObservedState,
                     SegmentAccess, chan_key, conflicts, sink_key)
from .api import RunResult, deprecated_alias
from .critical_path import CriticalPath, PathStep, critical_path
from .export import (TS_SCALE, chrome_trace, chrome_trace_json,
                     prometheus_text, spans_to_jsonl, write_chrome_trace,
                     write_jsonl_trace)
from .forensics import (ATTRIBUTION_CLASSES, CASCADE_ORPHAN, TIME_FAULT,
                        VALUE_FAULT, GuessForensics, ProvenanceGraph,
                        WastedWork, build_provenance, classify_abort,
                        wasted_work)
from .metrics import (DEFAULT_BUCKETS, WELL_KNOWN_COUNTERS, Counter, Gauge,
                      Histogram, MetricsRegistry, RuntimeMetrics)
from .realtime import PoolReport, WorkerStats, pool_report, summarize_values
from .spans import (ALL_KINDS, EVENT_KINDS, INTERVAL_KINDS, Span, as_spans,
                    span_from_dict, spans_from_protocol_log)
from .tracer import NULL_TRACER, NullTracer, RecordingTracer, Tracer
from .validate import (TraceValidationError, validate_chrome,
                       validate_jsonl, validate_spans)

__all__ = [
    # spans & tracers
    "Span", "Tracer", "NullTracer", "RecordingTracer", "NULL_TRACER",
    "as_spans", "span_from_dict", "spans_from_protocol_log",
    "ALL_KINDS", "EVENT_KINDS", "INTERVAL_KINDS",
    # metrics
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "RuntimeMetrics",
    "DEFAULT_BUCKETS", "WELL_KNOWN_COUNTERS",
    # wall-clock pool telemetry
    "PoolReport", "WorkerStats", "pool_report", "summarize_values",
    # access sets & conflict heatmaps
    "AccessTracker", "SegmentAccess", "ObservedState", "ConflictMatrix",
    "conflicts", "chan_key", "sink_key",
    # exporters & validation
    "chrome_trace", "chrome_trace_json", "write_chrome_trace",
    "spans_to_jsonl", "write_jsonl_trace", "prometheus_text", "TS_SCALE",
    "TraceValidationError", "validate_spans", "validate_chrome",
    "validate_jsonl",
    # forensics & critical path
    "ProvenanceGraph", "GuessForensics", "WastedWork", "build_provenance",
    "wasted_work", "classify_abort", "ATTRIBUTION_CLASSES",
    "VALUE_FAULT", "TIME_FAULT", "CASCADE_ORPHAN",
    "CriticalPath", "PathStep", "critical_path",
    # result surface
    "RunResult", "deprecated_alias",
]
