"""Trace smoke test: ``python -m repro.obs.smoke [outdir]``.

Runs the Fig. 3 and Fig. 6 scenarios with tracing on, exports each trace
in both supported formats, validates every artifact, and checks that the
Fig. 6 Chrome trace is byte-identical across two runs (the determinism
contract the golden test relies on).  Exits non-zero on any failure, so
``make trace-smoke`` can gate on it.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

from repro.core.analysis import speculation_report
from repro.obs.export import chrome_trace_json, spans_to_jsonl, write_chrome_trace, write_jsonl_trace
from repro.obs.tracer import RecordingTracer
from repro.obs.validate import validate_chrome, validate_jsonl, validate_spans
from repro.workloads.scenarios import run_fig3_streaming, run_fig6_two_threads


def _traced(builder):
    tracer = RecordingTracer()
    result = builder(tracer)
    return result, tracer.spans()


def run_smoke(outdir: str) -> int:
    cases = {
        "fig3": lambda tr: run_fig3_streaming(tracer=tr).optimistic,
        "fig6": lambda tr: run_fig6_two_threads(tracer=tr),
    }
    for name, builder in cases.items():
        result, spans = _traced(builder)
        if not spans:
            print(f"FAIL: {name} produced no spans", file=sys.stderr)
            return 1
        counts = validate_spans(spans)

        chrome_path = os.path.join(outdir, f"{name}_trace.json")
        write_chrome_trace(spans, chrome_path)
        with open(chrome_path, "r", encoding="utf-8") as fh:
            validate_chrome(json.load(fh))

        jsonl_path = os.path.join(outdir, f"{name}_trace.jsonl")
        write_jsonl_trace(spans, jsonl_path)
        with open(jsonl_path, "r", encoding="utf-8") as fh:
            validate_jsonl(fh.read())

        print(f"{name}: {counts['spans']} spans "
              f"({counts['guesses']} guesses, {counts['commits']} commits, "
              f"{counts['aborts']} aborts) -> "
              f"{os.path.basename(chrome_path)}, "
              f"{os.path.basename(jsonl_path)}")
        print(speculation_report(result, title=f"{name} report:"))

    # Determinism: the same scenario traced twice must export identically.
    _, once = _traced(cases["fig6"])
    _, twice = _traced(cases["fig6"])
    if chrome_trace_json(once) != chrome_trace_json(twice):
        print("FAIL: fig6 chrome trace is not deterministic", file=sys.stderr)
        return 1
    if spans_to_jsonl(once) != spans_to_jsonl(twice):
        print("FAIL: fig6 jsonl trace is not deterministic", file=sys.stderr)
        return 1
    print("determinism: fig6 trace byte-identical across runs")
    print("trace smoke OK")
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        outdir = argv[0]
        os.makedirs(outdir, exist_ok=True)
        return run_smoke(outdir)
    with tempfile.TemporaryDirectory(prefix="repro-trace-smoke-") as outdir:
        return run_smoke(outdir)


if __name__ == "__main__":
    sys.exit(main())
