"""Trace smoke test: ``python -m repro.obs.smoke [outdir]``.

Runs the Fig. 3 and Fig. 6 scenarios with tracing on, exports each trace
in both supported formats, validates every artifact, and checks that the
Fig. 6 Chrome trace is byte-identical across two runs (the determinism
contract the golden test relies on).  Exits non-zero on any failure, so
``make trace-smoke`` can gate on it.

The dual-clock section runs a small duplex workload on the real executor
backends and checks the two promises of the wall lane: traces that carry
wall stamps still validate and round-trip, and stripping the synthetic
wall process out of the Chrome export recovers the virtual-only export
byte-for-byte on every backend (virtual lane untouched by real time).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

from repro.core.analysis import speculation_report
from repro.obs.export import chrome_trace_json, spans_to_jsonl, write_chrome_trace, write_jsonl_trace
from repro.obs.tracer import RecordingTracer
from repro.obs.validate import validate_chrome, validate_jsonl, validate_spans
from repro.workloads.scenarios import run_fig3_streaming, run_fig6_two_threads


def _traced(builder):
    tracer = RecordingTracer()
    result = builder(tracer)
    return result, tracer.spans()


def run_smoke(outdir: str) -> int:
    cases = {
        "fig3": lambda tr: run_fig3_streaming(tracer=tr).optimistic,
        "fig6": lambda tr: run_fig6_two_threads(tracer=tr),
    }
    for name, builder in cases.items():
        result, spans = _traced(builder)
        if not spans:
            print(f"FAIL: {name} produced no spans", file=sys.stderr)
            return 1
        counts = validate_spans(spans)

        chrome_path = os.path.join(outdir, f"{name}_trace.json")
        write_chrome_trace(spans, chrome_path)
        with open(chrome_path, "r", encoding="utf-8") as fh:
            validate_chrome(json.load(fh))

        jsonl_path = os.path.join(outdir, f"{name}_trace.jsonl")
        write_jsonl_trace(spans, jsonl_path)
        with open(jsonl_path, "r", encoding="utf-8") as fh:
            validate_jsonl(fh.read())

        print(f"{name}: {counts['spans']} spans "
              f"({counts['guesses']} guesses, {counts['commits']} commits, "
              f"{counts['aborts']} aborts) -> "
              f"{os.path.basename(chrome_path)}, "
              f"{os.path.basename(jsonl_path)}")
        print(speculation_report(result, title=f"{name} report:"))

    # Determinism: the same scenario traced twice must export identically.
    _, once = _traced(cases["fig6"])
    _, twice = _traced(cases["fig6"])
    if chrome_trace_json(once) != chrome_trace_json(twice):
        print("FAIL: fig6 chrome trace is not deterministic", file=sys.stderr)
        return 1
    if spans_to_jsonl(once) != spans_to_jsonl(twice):
        print("FAIL: fig6 jsonl trace is not deterministic", file=sys.stderr)
        return 1
    print("determinism: fig6 trace byte-identical across runs")

    rc = run_dual_clock_smoke()
    if rc != 0:
        return rc
    print("trace smoke OK")
    return 0


# ------------------------------------------------------------- dual clock

def _strip_wall_lane(trace_json: str) -> str:
    """Chrome-trace JSON with the synthetic wall process removed."""
    doc = json.loads(trace_json)
    wall_pids = {ev.get("pid") for ev in doc["traceEvents"]
                 if ev.get("ph") == "M" and ev.get("name") == "process_name"
                 and ev.get("args", {}).get("name") == "wall"}
    doc["traceEvents"] = [ev for ev in doc["traceEvents"]
                          if ev.get("pid") not in wall_pids]
    return json.dumps(doc, sort_keys=True)


def _duplex_trace(backend) -> list:
    from repro.workloads.random_duplex import DuplexSpec, build_duplex_system

    spec = DuplexSpec(n_steps=3, n_signals=1, n_servers=2, seed=7)
    tracer = RecordingTracer()
    build_duplex_system(spec, optimistic=True, tracer=tracer,
                        backend=backend).run()
    return tracer.spans()


def run_dual_clock_smoke() -> int:
    from repro.exec.pool import ProcessPoolBackend, ThreadPoolBackend
    from repro.exec.virtual import VirtualTimeBackend

    backends = {
        "virtual": VirtualTimeBackend,
        "thread": lambda: ThreadPoolBackend(2, realize_scale=0.001),
        "process": lambda: ProcessPoolBackend(2, realize_scale=0.001),
    }
    stripped = {}
    for name, make in backends.items():
        spans = _duplex_trace(make())
        counts = validate_spans(spans)
        validate_jsonl(spans_to_jsonl(spans))
        walled = sum(1 for s in spans if s.wall_start is not None
                     and s.wall_end is not None)
        if name == "virtual" and walled:
            print("FAIL: virtual backend grew wall stamps", file=sys.stderr)
            return 1
        if name != "virtual" and not walled:
            print(f"FAIL: {name} backend recorded no wall stamps",
                  file=sys.stderr)
            return 1
        stripped[name] = _strip_wall_lane(chrome_trace_json(spans))
        print(f"dual-clock {name}: {counts['spans']} spans validated, "
              f"{walled} wall-stamped")
    if not (stripped["virtual"] == stripped["thread"] == stripped["process"]):
        print("FAIL: virtual lane differs across backends", file=sys.stderr)
        return 1
    print("dual-clock: virtual lane byte-identical across "
          "virtual/thread/process backends")
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        outdir = argv[0]
        os.makedirs(outdir, exist_ok=True)
        return run_smoke(outdir)
    with tempfile.TemporaryDirectory(prefix="repro-trace-smoke-") as outdir:
        return run_smoke(outdir)


if __name__ == "__main__":
    sys.exit(main())
