"""Tracers: the recording surface every runtime writes spans through.

The base :class:`Tracer` is a *no-op*: every method returns immediately
and records nothing, and its class attribute ``enabled`` is ``False`` so
hot paths can skip even argument construction with a single attribute
test::

    if tracer.enabled:
        tracer.event(SEND, self.name, now, name=dst, payload=len(msg))

This is what makes tracing zero-overhead-when-off — systems default to
the shared :data:`NULL_TRACER` singleton, and the only cost on the hot
path is one predictable branch.

:class:`RecordingTracer` keeps every span in creation order with small
integer ids.  Because the simulation is deterministic and all stamps are
virtual time, two runs of the same scenario produce byte-identical
traces.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .spans import Span


class Tracer:
    """No-op tracer; base class and default for every runtime.

    Subclass and set ``enabled = True`` to actually record.  All times
    are virtual (simulation) time; span ids are opaque ints (``-1`` from
    the no-op tracer).
    """

    enabled: bool = False

    __slots__ = ()

    def start_span(self, kind: str, process: str, start: float, *,
                   name: str = "", parent: Optional[int] = None,
                   **attrs: Any) -> int:
        """Open an interval span; returns its id."""
        return -1

    def end_span(self, sid: int, end: float, **attrs: Any) -> None:
        """Close a previously opened span, merging ``attrs`` in."""

    def event(self, kind: str, process: str, time: float, *,
              name: str = "", parent: Optional[int] = None,
              **attrs: Any) -> int:
        """Record an instant (zero-duration) span; returns its id."""
        return -1

    def annotate_wall(self, sid: int, *, start: Optional[float] = None,
                      end: Optional[float] = None,
                      worker: Optional[str] = None) -> None:
        """Attach wall-clock observations to a span (real backends only).

        Unlike ``end_span`` this works on closed spans too: cancelled pool
        tasks settle at :meth:`~repro.exec.api.ExecutorBackend.drain`,
        after their segment span was already ended by the abort path.
        Fields left ``None`` keep any previously annotated value.

        Repeated annotation *accumulates*: the stamps widen to the burst
        envelope (min start, max end) and, when a call carries both
        stamps — one complete labor burst, as pool settles do — the
        burst's length is added to the span's ``wall_busy`` tally.  A
        server's serve loop is one span but many pool tasks; widening
        keeps its envelope honest while ``wall_busy`` keeps its labor
        exact.
        """

    def close_open(self, end: float) -> int:
        """Close any dangling spans at ``end``; returns how many."""
        return 0

    def spans(self) -> List[Span]:
        """All recorded spans in creation (sid) order."""
        return []


class NullTracer(Tracer):
    """Explicit alias for the disabled tracer (API symmetry)."""

    __slots__ = ()


#: Shared default instance — the no-op tracer is stateless.
NULL_TRACER = NullTracer()


class RecordingTracer(Tracer):
    """In-memory tracer with deterministic, creation-ordered span ids."""

    enabled = True

    __slots__ = ("_spans", "_open", "_next_sid")

    def __init__(self) -> None:
        self._spans: List[Span] = []
        self._open: Dict[int, Span] = {}
        self._next_sid = 0

    def _new_span(self, kind: str, process: str, start: float,
                  end: Optional[float], name: str, parent: Optional[int],
                  attrs: Dict[str, Any]) -> Span:
        span = Span(sid=self._next_sid, kind=kind, name=name,
                    process=process, start=start, end=end, parent=parent,
                    attrs=attrs)
        self._next_sid += 1
        self._spans.append(span)
        return span

    def start_span(self, kind: str, process: str, start: float, *,
                   name: str = "", parent: Optional[int] = None,
                   **attrs: Any) -> int:
        span = self._new_span(kind, process, start, None, name, parent, attrs)
        self._open[span.sid] = span
        return span.sid

    def end_span(self, sid: int, end: float, **attrs: Any) -> None:
        span = self._open.pop(sid, None)
        if span is None:     # unknown or already closed: ignore quietly
            return
        span.end = end
        if attrs:
            span.attrs.update(attrs)

    def event(self, kind: str, process: str, time: float, *,
              name: str = "", parent: Optional[int] = None,
              **attrs: Any) -> int:
        return self._new_span(kind, process, time, time, name or kind,
                              parent, attrs).sid

    def annotate_wall(self, sid: int, *, start: Optional[float] = None,
                      end: Optional[float] = None,
                      worker: Optional[str] = None) -> None:
        # sids are assigned densely in creation order, so the span list
        # doubles as the sid index — annotation is O(1), open or closed.
        if 0 <= sid < len(self._spans):
            span = self._spans[sid]
            if start is not None:
                span.wall_start = (start if span.wall_start is None
                                   else min(span.wall_start, start))
            if end is not None:
                span.wall_end = (end if span.wall_end is None
                                 else max(span.wall_end, end))
            if worker is not None:
                span.worker = worker
            if start is not None and end is not None:
                span.wall_busy = (span.wall_busy or 0.0) + (end - start)

    def close_open(self, end: float) -> int:
        """Close spans still open when the run ends (marked truncated)."""
        count = 0
        for sid in sorted(self._open):
            span = self._open[sid]
            span.end = max(end, span.start)
            span.attrs["truncated"] = True
            count += 1
        self._open.clear()
        return count

    def spans(self) -> List[Span]:
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)
