"""Speculation forensics: *why* each guess died and what it cost.

The tracer (PR 2) records what happened; this module reconstructs the
causal story from those spans alone — no live runtime needed, so any
persisted JSONL trace can be analysed after the fact:

* a **provenance graph** linking every guess to the guesses it was born
  under (fork-time guard), the precedence edges the CDG learned, the
  messages it contaminated, the rollbacks and orphan discards its abort
  caused, and the cascade of dependent guesses it took down;
* **abort attribution**: every resolved ``GUESS`` span's terminal outcome
  is classified into exactly one of value fault, time fault, or cascade
  orphan, with per-predictor (fork-site) blame counters;
* **wasted-work accounting** over segment/service intervals: committed
  vs. discarded vs. still-unresolved virtual time, with discarded time
  attributed to the guess that caused the discard.  The three classes
  partition the interval spans, so

      committed + wasted + unresolved == total traced interval time

  holds *by construction* — the conservation property the speculation
  health gate (``repro.bench.speculation_health``) re-checks per run.

Everything consumes any *span source* accepted by
:func:`repro.obs.spans.as_spans` (a result object, a span list, or a
legacy protocol log).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .spans import (
    ABORT_OUTCOME,
    CDG_EDGE,
    COMMIT_OUTCOME,
    GUESS,
    ORPHAN,
    ROLLBACK,
    SEGMENT,
    SEND,
    SERVICE,
    Span,
    as_spans,
)

# ------------------------------------------------------- abort attribution

#: The guessed value was wrong (§"Abort": verifier rejected the exports).
VALUE_FAULT = "value_fault"
#: A causality violation: CDG cycle, self-dependent join, divergence
#: timeout, or a Time Warp straggler — the guess could never commit in a
#: consistent order, regardless of the guessed value.
TIME_FAULT = "time_fault"
#: Collateral damage: the guess itself was never proven wrong, but an
#: ancestor it depended on aborted and the cascade destroyed it.
CASCADE_ORPHAN = "cascade_orphan"

ATTRIBUTION_CLASSES = (VALUE_FAULT, TIME_FAULT, CASCADE_ORPHAN)

#: abort ``reason=`` → attribution class.  Reasons keep their historical
#: protocol-log spellings; this is the one place they are folded into the
#: paper's three-way taxonomy.  Unknown reasons default to TIME_FAULT
#: (an ordering problem is the only fault class that needs no evidence
#: about values or ancestors).
_REASON_CLASS = {
    "value_fault": VALUE_FAULT,
    "time_fault": TIME_FAULT,
    "cycle": TIME_FAULT,
    "timeout": TIME_FAULT,
    "straggler": TIME_FAULT,
    "parent_rollback": CASCADE_ORPHAN,
    "anti": CASCADE_ORPHAN,
}


def classify_abort(span: Span) -> str:
    """Exactly one attribution class for an abort-outcome ``GUESS`` span.

    A ``root=`` attribute marks a cascade member (it names the guess whose
    failure propagated here) and dominates the recorded reason: a nested
    guess destroyed during an ancestor's value-fault abort keeps
    ``reason="value_fault"`` for protocol-log compatibility, but it was
    never itself mispredicted.
    """
    if span.attrs.get("root"):
        return CASCADE_ORPHAN
    return _REASON_CLASS.get(span.attrs.get("reason"), TIME_FAULT)


# ----------------------------------------------------------- wasted work


def _interval_duration(span: Span, makespan: float) -> float:
    end = span.end if span.end is not None else makespan
    return max(0.0, end - span.start)


@dataclass
class WastedWork:
    """Partition of all traced segment/service time, in virtual time.

    Dual-clock runs additionally partition the *wall-clock labor* of the
    same spans — the substrate of the ``speculation_efficiency`` metric
    (committed real labor over total real labor).  The wall ledger's
    unresolved bucket is narrower than the virtual one: a server's serve
    loop is one span that is always ``truncated`` when the run drains,
    yet any labor burst still on it was never rolled back — it stood.  So
    wall labor counts as wasted only when its span's effects were undone
    (``destroyed``/``rolled_back``), as unresolved only on spans never
    closed at all (profiling a live tracer mid-run), and as committed
    otherwise.  Wall fields stay zero on virtual backends, and
    :meth:`to_dict` omits the wall section entirely then, so virtual-run
    reports are unchanged.
    """

    committed: float = 0.0      #: intervals that terminated and stand
    wasted: float = 0.0         #: destroyed or rolled-back intervals
    unresolved: float = 0.0     #: truncated — still in doubt at run end
    #: wasted time attributed to the guess that caused the discard
    by_guess: Dict[str, float] = field(default_factory=dict)
    #: wasted time whose discard carried no cause attribution
    unattributed: float = 0.0
    #: wall-clock labor (seconds) in the same three classes
    wall_committed: float = 0.0
    wall_wasted: float = 0.0
    wall_unresolved: float = 0.0

    @property
    def total(self) -> float:
        return self.committed + self.wasted + self.unresolved

    @property
    def wasted_fraction(self) -> float:
        return self.wasted / self.total if self.total > 0 else 0.0

    @property
    def wall_total(self) -> float:
        return self.wall_committed + self.wall_wasted + self.wall_unresolved

    @property
    def speculation_efficiency(self) -> Optional[float]:
        """Committed wall labor / total wall labor (None without wall data)."""
        total = self.wall_total
        return self.wall_committed / total if total > 0 else None

    def conserved(self, tol: float = 1e-9) -> bool:
        """Attributed + unattributed waste must re-sum to ``wasted``."""
        return abs(sum(self.by_guess.values()) + self.unattributed
                   - self.wasted) <= tol

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "committed": self.committed,
            "wasted": self.wasted,
            "unresolved": self.unresolved,
            "total": self.total,
            "wasted_fraction": self.wasted_fraction,
            "by_guess": dict(sorted(self.by_guess.items())),
            "unattributed": self.unattributed,
        }
        if self.wall_total > 0:
            out["wall"] = {
                "committed": self.wall_committed,
                "wasted": self.wall_wasted,
                "unresolved": self.wall_unresolved,
                "total": self.wall_total,
                "speculation_efficiency": self.speculation_efficiency,
            }
        return out


def wasted_work(source) -> WastedWork:
    """Classify every segment/service interval: committed, wasted, open.

    ``outcome="destroyed"``/``"rolled_back"`` intervals are waste (their
    effects were undone); ``truncated`` intervals are still unresolved;
    everything else terminated and its work stands.  Waste is attributed
    per guess through the ``cause=`` attribute the runtime stamps on
    discarded segment spans.
    """
    spans = as_spans(source)
    makespan = max((s.end for s in spans if s.end is not None), default=0.0)
    acc = WastedWork()
    for span in spans:
        if span.kind not in (SEGMENT, SERVICE):
            continue
        dur = _interval_duration(span, makespan)
        outcome = span.attrs.get("outcome")
        if outcome in ("destroyed", "rolled_back"):
            acc.wasted += dur
            cause = span.attrs.get("cause")
            if cause:
                acc.by_guess[cause] = acc.by_guess.get(cause, 0.0) + dur
            else:
                acc.unattributed += dur
        elif span.attrs.get("truncated"):
            acc.unresolved += dur
        else:
            acc.committed += dur
        wall = span.wall_labor  # None without dual-clock capture
        if wall is not None:
            # The wall ledger (see WastedWork docstring): undone -> wasted,
            # still-open span -> unresolved, everything else stood.
            if outcome in ("destroyed", "rolled_back"):
                acc.wall_wasted += wall
            elif span.end is None:
                acc.wall_unresolved += wall
            else:
                acc.wall_committed += wall
    return acc


# -------------------------------------------------------- provenance graph


@dataclass
class GuessForensics:
    """Everything the trace knows about one guess."""

    key: str
    process: str
    site: str                   #: fork site (predictor identity for blame)
    mechanism: str              #: optimistic | promise | timewarp | ...
    start: float
    end: Optional[float]
    outcome: str                #: commit | abort | unresolved
    reason: Optional[str] = None
    attribution: Optional[str] = None   #: set iff outcome == abort
    root: Optional[str] = None          #: cascade root (abort provenance)
    cycle: List[str] = field(default_factory=list)
    #: ``[key, guessed_repr, actual_repr]`` rows for value faults
    mispredicted: List[List[str]] = field(default_factory=list)
    #: guesses this one was born depending on (fork-time guard + CDG)
    depends_on: List[str] = field(default_factory=list)
    #: inverse of depends_on over the whole graph
    dependents: List[str] = field(default_factory=list)
    #: messages sent while this guess was in the sender's guard
    messages_tagged: int = 0
    message_dests: List[str] = field(default_factory=list)
    #: orphan discards of messages this (aborted) guess had contaminated
    orphans_caused: int = 0
    #: rollbacks performed because this guess aborted
    rollbacks_caused: int = 0
    #: discarded virtual time attributed to this guess's abort
    wasted_time: float = 0.0

    @property
    def in_doubt_for(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "process": self.process,
            "site": self.site,
            "mechanism": self.mechanism,
            "start": self.start,
            "end": self.end,
            "outcome": self.outcome,
            "reason": self.reason,
            "attribution": self.attribution,
            "root": self.root,
            "cycle": list(self.cycle),
            "mispredicted": [list(m) for m in self.mispredicted],
            "depends_on": list(self.depends_on),
            "dependents": list(self.dependents),
            "messages_tagged": self.messages_tagged,
            "message_dests": list(self.message_dests),
            "orphans_caused": self.orphans_caused,
            "rollbacks_caused": self.rollbacks_caused,
            "wasted_time": self.wasted_time,
        }


class ProvenanceGraph:
    """The causal structure of one run's speculation, guess by guess."""

    def __init__(self) -> None:
        self.guesses: Dict[str, GuessForensics] = {}
        #: dependence edges (parent, child): child speculated under parent
        self.edges: List[Tuple[str, str]] = []
        self.wasted: WastedWork = WastedWork()
        self.makespan: float = 0.0

    # -------------------------------------------------------------- queries

    def node(self, key: str) -> GuessForensics:
        try:
            return self.guesses[key]
        except KeyError:
            known = ", ".join(self.guesses) or "none"
            raise KeyError(
                f"unknown guess {key!r}; traced guesses: {known}"
            ) from None

    def aborted(self) -> List[GuessForensics]:
        return [g for g in self.guesses.values()
                if g.outcome == ABORT_OUTCOME]

    def cascade_of(self, key: str) -> List[str]:
        """Guesses destroyed because ``key`` failed (its blast radius)."""
        return [g.key for g in self.guesses.values() if g.root == key]

    def attribution_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {c: 0 for c in ATTRIBUTION_CLASSES}
        for g in self.aborted():
            counts[g.attribution] = counts.get(g.attribution, 0) + 1
        return counts

    def blame_by_site(self) -> Dict[str, Dict[str, int]]:
        """Per-predictor counters: commits and each abort class by site."""
        blame: Dict[str, Dict[str, int]] = {}
        for g in self.guesses.values():
            row = blame.setdefault(g.site, defaultdict(int))
            if g.outcome == ABORT_OUTCOME:
                row[g.attribution] += 1
            elif g.outcome == COMMIT_OUTCOME:
                row["commit"] += 1
            else:
                row["unresolved"] += 1
        return {site: dict(row) for site, row in sorted(blame.items())}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "makespan": self.makespan,
            "guesses": {k: g.to_dict() for k, g in self.guesses.items()},
            "edges": [list(e) for e in self.edges],
            "attribution": self.attribution_counts(),
            "blame_by_site": self.blame_by_site(),
            "wasted_work": self.wasted.to_dict(),
        }

    # ------------------------------------------------------------ rendering

    def explain(self, key: str) -> List[str]:
        """Human-readable forensic story of one guess."""
        g = self.node(key)
        window = (f"{g.start:g}..{g.end:g}" if g.end is not None
                  else f"{g.start:g}..?")
        lines = [
            f"guess {g.key} ({g.mechanism}) on {g.process} "
            f"at site {g.site!r}, in doubt {window}",
        ]
        if g.outcome == ABORT_OUTCOME:
            lines.append(
                f"  fate: ABORT — {g.attribution} (reason={g.reason})")
            if g.attribution == VALUE_FAULT and g.mispredicted:
                for k, guessed, actual in g.mispredicted:
                    lines.append(
                        f"    mispredicted {k!r}: guessed {guessed}, "
                        f"actual {actual}")
            if g.cycle:
                lines.append(
                    "    CDG cycle: " + " -> ".join(g.cycle + [g.cycle[0]]))
            if g.root:
                lines.append(f"    cascade root: {g.root}")
        elif g.outcome == COMMIT_OUTCOME:
            lines.append("  fate: COMMIT")
        else:
            lines.append("  fate: unresolved at end of run")
        if g.depends_on:
            lines.append("  speculated under: " + ", ".join(g.depends_on))
        if g.dependents:
            lines.append("  dependents spawned: " + ", ".join(g.dependents))
        if g.messages_tagged:
            dests = ", ".join(g.message_dests)
            lines.append(
                f"  contaminated {g.messages_tagged} message(s) to {dests}")
        cascade = self.cascade_of(key)
        if cascade:
            lines.append("  abort cascade took down: " + ", ".join(cascade))
        if g.rollbacks_caused:
            lines.append(f"  rollbacks caused: {g.rollbacks_caused}")
        if g.orphans_caused:
            lines.append(f"  orphaned messages discarded: {g.orphans_caused}")
        if g.wasted_time:
            lines.append(f"  wasted virtual time: {g.wasted_time:g}")
        return lines

    def report_lines(self) -> List[str]:
        """The full forensic report (all guesses + accounting)."""
        lines: List[str] = []
        counts = self.attribution_counts()
        aborted = self.aborted()
        lines.append(
            f"guesses={len(self.guesses)} aborts={len(aborted)} "
            + " ".join(f"{c}={counts.get(c, 0)}"
                       for c in ATTRIBUTION_CLASSES))
        blame = self.blame_by_site()
        if blame:
            lines.append("blame by predictor site:")
            for site, row in blame.items():
                cells = " ".join(f"{k}={v}" for k, v in sorted(row.items()))
                lines.append(f"  {site}: {cells}")
        w = self.wasted
        lines.append(
            f"segment time: committed={w.committed:g} wasted={w.wasted:g} "
            f"unresolved={w.unresolved:g} total={w.total:g} "
            f"(wasted fraction {w.wasted_fraction:.1%})")
        for key in self.guesses:
            lines.append("")
            lines.extend(self.explain(key))
        return lines


def build_provenance(source) -> ProvenanceGraph:
    """Reconstruct the provenance graph from any span source."""
    spans = as_spans(source)
    graph = ProvenanceGraph()
    graph.makespan = max(
        (s.end for s in spans if s.end is not None), default=0.0)
    graph.wasted = wasted_work(spans)

    edge_set: set = set()

    def add_edge(parent: str, child: str) -> None:
        if parent != child and (parent, child) not in edge_set:
            edge_set.add((parent, child))
            graph.edges.append((parent, child))

    # Pass 1: one node per GUESS span (creation order = trace order).
    for span in spans:
        if span.kind != GUESS:
            continue
        attrs = span.attrs
        truncated = attrs.get("truncated") or span.end is None
        outcome = attrs.get("outcome")
        if truncated or outcome not in (COMMIT_OUTCOME, ABORT_OUTCOME):
            outcome = "unresolved"
        node = GuessForensics(
            key=span.name,
            process=span.process,
            site=attrs.get("site") or span.process,
            mechanism=attrs.get("mechanism", "optimistic"),
            start=span.start,
            end=span.end if outcome != "unresolved" else None,
            outcome=outcome,
            reason=attrs.get("reason"),
            attribution=(classify_abort(span)
                         if outcome == ABORT_OUTCOME else None),
            root=attrs.get("root"),
            cycle=list(attrs.get("cycle", ())),
            mispredicted=[list(m) for m in attrs.get("mispredicted", ())],
        )
        graph.guesses[node.key] = node
        for parent in attrs.get("guard", ()):
            add_edge(parent, node.key)

    # Pass 2: events enrich the nodes.
    for span in spans:
        attrs = span.attrs
        if span.kind == CDG_EDGE:
            # precedence src -> dst: dst can only commit after src.
            src, dst = attrs.get("src"), attrs.get("dst")
            if src and dst:
                add_edge(src, dst)
        elif span.kind == SEND:
            for key in attrs.get("guard", ()):
                node = graph.guesses.get(key)
                if node is not None:
                    node.messages_tagged += 1
                    dst = attrs.get("dst")
                    if dst and dst not in node.message_dests:
                        node.message_dests.append(dst)
        elif span.kind == ORPHAN:
            culprit = attrs.get("aborted")
            node = graph.guesses.get(culprit) if culprit else None
            if node is not None:
                node.orphans_caused += 1
        elif span.kind == ROLLBACK:
            cause = attrs.get("cause")
            node = graph.guesses.get(cause) if cause else None
            if node is not None:
                node.rollbacks_caused += 1

    # Dependents = inverse dependence edges; wasted time joins by cause.
    for parent, child in graph.edges:
        pnode = graph.guesses.get(parent)
        cnode = graph.guesses.get(child)
        if pnode is not None and child not in pnode.dependents:
            pnode.dependents.append(child)
        if cnode is not None and parent not in cnode.depends_on:
            cnode.depends_on.append(parent)
    for key, t in graph.wasted.by_guess.items():
        node = graph.guesses.get(key)
        if node is not None:
            node.wasted_time = t
    return graph
