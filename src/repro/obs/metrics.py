"""Typed metrics over the untyped :class:`~repro.sim.stats.Stats` store.

Historically every subsystem bumped raw string keys —
``stats.incr("opt.forks")`` — and analyses had to know the key strings.
The :class:`MetricsRegistry` replaces that with *declared* instruments:

* :class:`Counter` — monotonically increasing count;
* :class:`Gauge` — instantaneous level, with a virtual-time series;
* :class:`Histogram` — distribution over fixed buckets.

``Stats`` remains the backing store (counters land in
``stats.counters``, gauge series in ``stats.series``), so everything
that reads ``Stats`` today — snapshots, ``perf()``, test pins — keeps
working unchanged; the registry adds names, types, help strings and a
prometheus-style text export on top.

:class:`RuntimeMetrics` declares the optimistic runtime's full
instrument set in one place, replacing the string-key increments that
used to be scattered through ``core/runtime.py``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.stats import Stats

#: Default histogram buckets (virtual-time durations).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0)

#: Help text for counters that are bumped outside the registry — executor
#: backends keep plain ints and merge them into ``stats.counters`` at
#: drain — but still deserve real ``# HELP`` metadata in the prometheus
#: export instead of the generic "undeclared counter" stamp.
WELL_KNOWN_COUNTERS: Dict[str, str] = {
    "exec.workers": "pool workers configured on the executor backend",
    "exec.tasks_submitted": "work payloads submitted to the executor pool",
    "exec.tasks_completed": "pool tasks settled at their placeholder event",
    "exec.tasks_cancelled": "pool tasks cancelled by rollback or abort",
    "exec.gate_waits": "placeholder pops that blocked on an unfinished task",
    "exec.pool_spinups": "lazy pool executor start-ups",
    "exec.task_errors":
        "payload failures captured as structured SegmentFailure records",
    "exec.fault.kills_injected":
        "worker deaths injected by the exec fault plane",
    "exec.fault.hangs_injected":
        "non-cooperative payload hangs injected by the exec fault plane",
    "exec.fault.poison_injected":
        "deterministically failing payloads injected by the exec fault plane",
    "exec.fault.results_lost":
        "completed-labor results lost in transit by the exec fault plane",
    "exec.fault.sched_kills":
        "scheduled WorkerKillSpec kills applied to in-flight tasks",
    "exec.fault.events":
        "substrate fault events detected at gates (injected or real)",
    "exec.fault.quarantined":
        "task labels quarantined after repeated deterministic failures",
    "exec.fault.quarantine_skips":
        "submissions that skipped real labor because their label is "
        "quarantined",
    "exec.retry.attempts":
        "segment-labor resubmissions after a recoverable substrate fault",
    "exec.retry.respawns":
        "pool executors retired and respawned (broken pool or hung worker)",
    "exec.retry.exhausted":
        "tasks whose transient-fault retries ran out (labor given up)",
    "exec.fallback.demotions":
        "pool backends demoted to virtual passthrough by a FallbackPolicy",
    "exec.fallback.virtual_segments":
        "segments run as pure virtual events after fallback demotion",
    "exec.watchdog.timeouts":
        "gate waits that exceeded the watchdog deadline",
    "exec.watchdog.abandoned":
        "hung tasks abandoned after the cancellation grace period",
    "wall.records": "per-task wall-clock records captured by the backend",
    "wall.annotated": "spans annotated with wall-clock labor stamps",
    "wall.labor_ms": "total wall-clock labor milliseconds on pool workers",
    "wall.gate_block_ms":
        "total wall-clock milliseconds the driver blocked at gates",
}


class Counter:
    """Monotonic counter; increments land in ``stats.counters[name]``."""

    __slots__ = ("name", "help", "_stats")

    def __init__(self, name: str, help: str, stats: Stats) -> None:
        self.name = name
        self.help = help
        self._stats = stats

    def inc(self, amount: int = 1) -> None:
        self._stats.incr(self.name, amount)

    @property
    def value(self) -> int:
        return self._stats.get(self.name)


class Gauge:
    """Instantaneous level; each change is recorded as a time series."""

    __slots__ = ("name", "help", "value", "_stats")

    def __init__(self, name: str, help: str, stats: Stats) -> None:
        self.name = name
        self.help = help
        self.value: float = 0.0
        self._stats = stats

    def set(self, value: float, time: float = 0.0) -> None:
        self.value = value
        self._stats.record(self.name, time, value)

    def add(self, delta: float, time: float = 0.0) -> None:
        self.set(self.value + delta, time)


class Histogram:
    """Fixed-bucket distribution (prometheus-style cumulative export).

    The observation count is mirrored into ``stats.counters`` under
    ``<name>.count`` so untyped consumers still see activity.
    """

    __slots__ = ("name", "help", "buckets", "counts", "total", "sum",
                 "_stats")

    def __init__(self, name: str, help: str, stats: Stats,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)  # +inf slot
        self.total = 0
        self.sum = 0.0
        self._stats = stats

    def observe(self, value: float) -> None:
        self.total += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self._stats.incr(self.name + ".count")

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending at +inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), self.total))
        return out


def _sanitize(name: str) -> str:
    """Dots (our namespacing) are invalid in prometheus metric names."""
    return name.replace(".", "_").replace("-", "_")


class MetricsRegistry:
    """Declared instruments over a shared :class:`Stats` backing store."""

    def __init__(self, stats: Optional[Stats] = None) -> None:
        self.stats = stats if stats is not None else Stats()
        self._metrics: Dict[str, Any] = {}  # insertion-ordered

    def _declare(self, name: str, factory, cls) -> Any:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already declared as "
                    f"{type(existing).__name__}, not {cls.__name__}")
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._declare(
            name, lambda: Counter(name, help, self.stats), Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._declare(
            name, lambda: Gauge(name, help, self.stats), Gauge)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._declare(
            name, lambda: Histogram(name, help, self.stats, buckets),
            Histogram)

    def names(self) -> List[str]:
        return list(self._metrics)

    def get(self, name: str) -> Any:
        return self._metrics[name]

    def to_prometheus(self, include_unregistered: bool = True) -> str:
        """Prometheus text exposition of every declared instrument.

        Every exported series carries ``# HELP`` and ``# TYPE`` metadata —
        including the ``_sum``/``_count`` series of each histogram, which
        scrapers that do not understand the histogram family can then
        still ingest as plain counters.  With ``include_unregistered``,
        raw ``stats.counters`` entries that no declared instrument owns
        are appended as untyped counters, so legacy ``stats.incr`` call
        sites still show up in the dump.
        """
        lines: List[str] = []
        covered = set()

        def meta(pname: str, ptype: str, help_text: str) -> None:
            lines.append(f"# HELP {pname} {help_text}")
            lines.append(f"# TYPE {pname} {ptype}")

        for name, metric in self._metrics.items():
            pname = _sanitize(name)
            help_text = metric.help or name
            if isinstance(metric, Counter):
                meta(pname, "counter", help_text)
                lines.append(f"{pname} {metric.value}")
                covered.add(name)
            elif isinstance(metric, Gauge):
                meta(pname, "gauge", help_text)
                lines.append(f"{pname} {metric.value}")
                covered.add(name)
            elif isinstance(metric, Histogram):
                meta(pname, "histogram", help_text)
                for bound, count in metric.cumulative():
                    le = "+Inf" if bound == float("inf") else repr(bound)
                    lines.append(f'{pname}_bucket{{le="{le}"}} {count}')
                meta(f"{pname}_sum", "counter",
                     f"total of values observed by {pname}")
                lines.append(f"{pname}_sum {metric.sum}")
                meta(f"{pname}_count", "counter",
                     f"number of observations recorded by {pname}")
                lines.append(f"{pname}_count {metric.total}")
                covered.add(name)
                covered.add(name + ".count")
        if include_unregistered:
            extras = sorted(k for k in self.stats.counters
                            if k not in covered)
            for name in extras:
                pname = _sanitize(name)
                meta(pname, "counter",
                     WELL_KNOWN_COUNTERS.get(
                         name, f"undeclared counter (stats key {name!r})"))
                lines.append(f"{pname} {self.stats.counters[name]}")
        return "\n".join(lines) + "\n"


class RuntimeMetrics:
    """The optimistic runtime's declared instrument set.

    One attribute per metric so hot paths write ``m.forks.inc()`` instead
    of ``stats.incr("opt.forks")`` — same backing keys, now typed and
    self-documenting.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        c = registry.counter
        self.forks = c("opt.forks", "guesses forked")
        self.commits = c("opt.commits", "guesses committed")
        self.aborts = c("opt.aborts", "guesses aborted (any reason)")
        self.aborts_timeout = c("opt.aborts.timeout",
                                "aborts from fork-timer expiry")
        self.aborts_value_fault = c("opt.aborts.value_fault",
                                    "aborts from wrong guessed values")
        self.aborts_time_fault = c("opt.aborts.time_fault",
                                   "aborts from early-reply time faults")
        self.aborts_cycle = c("opt.aborts.cycle",
                              "aborts breaking commit-dependency cycles")
        self.fork_fallback = c("opt.fork_fallback_pessimistic",
                               "forks skipped (no predictor/disabled)")
        self.guesses_deferred = c("opt.guesses_deferred",
                                  "guessed keys dropped: continuation "
                                  "statically never touches them")
        self.guess_free_forks = c("opt.guess_free_forks",
                                  "forks whose whole guess deferred "
                                  "(statically disjoint continuation)")
        self.commutative_repairs = c("opt.commutative_repairs",
                                     "guess mismatches repaired by a "
                                     "certified commutative delta")
        self.guard_tag_units = c("opt.guard_tag_units",
                                 "guard tags carried on messages")
        self.guards_acquired = c("opt.guards_acquired",
                                 "guard tags acquired by receivers")
        self.orphans_discarded = c("opt.orphans_discarded",
                                   "orphan messages dropped")
        self.emissions_buffered = c("opt.emissions_buffered",
                                    "external outputs held for commit")
        self.emissions_released = c("opt.emissions_released",
                                    "external outputs released on commit")
        self.emissions_dropped = c("opt.emissions_dropped",
                                   "external outputs dropped on abort")
        self.precedence_sent = c("opt.precedence_sent",
                                 "PRECEDENCE control messages sent")
        self.rollbacks = c("opt.rollbacks", "thread rollback operations")
        self.threads_destroyed = c("opt.threads_destroyed",
                                   "speculative threads destroyed")
        self.continuations = c("opt.continuations",
                               "continuation threads spawned")
        self.speculation_depth = registry.gauge(
            "opt.speculation_depth", "guesses currently in doubt")
        self.doubt_time = registry.histogram(
            "opt.doubt_time", "virtual time guesses spend in doubt")
        # Resilience layer (acks/retransmission/dedup/orphan re-detection).
        self.retransmits = c("net.retransmits",
                             "reliable-transport frame retransmissions")
        self.retransmit_giveups = c("net.retransmit_giveups",
                                    "frames abandoned after max retries")
        self.acks_sent = c("net.acks_sent",
                           "reliable-transport acks sent")
        self.frames_deduped = c("net.frames_deduped",
                                "duplicate frames suppressed by seq dedup")
        self.control_dups = c("opt.control_duplicates",
                              "duplicate control messages suppressed")
        self.data_dups = c("opt.data_duplicates",
                           "duplicate data envelopes suppressed")
        self.orphan_scans = c("opt.orphan_scans",
                              "orphan re-detection scan rounds")
        self.orphan_queries = c("opt.orphan_queries",
                                "QUERY probes sent for unresolved guesses")
        self.query_replies = c("opt.query_replies",
                               "resolutions re-sent in answer to a QUERY")
        self.crashes = c("opt.crashes", "process crash events")
        self.restarts = c("opt.restarts", "process restart events")
        self.crash_replays = c("opt.crash_replays",
                               "threads rebuilt by replay after a restart")
        self.messages_lost_down = c("opt.messages_lost_down",
                                    "deliveries dropped at a crashed process")
        self.exec_failures = c("opt.exec_failures",
                               "segment-labor failures surfaced to the "
                               "runtime by the executor backend")
        # Speculation governor.
        self.gov_throttled = c("gov.forks_throttled",
                               "forks denied by the speculation governor")
        self.gov_probes = c("gov.probe_forks",
                            "probe forks admitted through a closed window")
        self.gov_window = registry.gauge(
            "gov.admission_window",
            "governor fork-admission window (last process updated)")
