"""The span schema: typed intervals and instants of a simulated run.

A :class:`Span` is one interval of virtual time attributed to a process —
the unit every execution mode (optimistic, sequential, pipelining,
promises, time warp) reports through, so traces from different runtimes
can be compared, merged and exported with the same tools.

Two span shapes exist:

* **interval spans** (``end > start`` possible): a guess's fork→resolution
  window, a segment execution, a server servicing one request;
* **instant events** (``end == start``): sends, receives, control
  messages, rollbacks, replays, orphan discards, timer firings.

Span ids are small integers assigned in creation order by the tracer, and
all primary timestamps are *virtual* time, so a trace of a deterministic
run is itself deterministic — byte-identical across repetitions — and can
be golden-tested.

Dual-clock spans
----------------

On a real executor backend (:mod:`repro.exec.pool`) a span may *also*
carry wall-clock observations: ``wall_start``/``wall_end`` (seconds, from
``time.perf_counter``) and the ``worker`` that performed the real labor.
The wall fields are strictly additive — they never appear in the virtual
fields or attrs, so the virtual-time projection of a trace stays
byte-identical across backends.  :meth:`Span.to_dict` only includes them
when present, which keeps virtual-backend JSONL exports unchanged.

A long-lived span can accumulate *several* labor bursts — a server's
``serve`` segment is one span but services many requests, each a separate
pool task.  The stamps then hold the burst *envelope* (first start, last
end, last worker) while ``wall_busy`` accumulates the exact busy seconds,
so :attr:`Span.wall_labor` never counts a server's idle gaps as labor.

The kind vocabulary is deliberately shared across modes: a promise that
has not resolved yet and a Time Warp event that may still roll back are
both "guesses in doubt" in the paper's sense, so they emit ``GUESS``
spans too and the same analysis (:mod:`repro.core.analysis`) reads all of
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

# --------------------------------------------------------------- span kinds

#: Speculation interval: fork→commit/abort for the optimistic runtime,
#: issue→resolve for a promise, process→commit/rollback for Time Warp.
#: Closed with ``outcome="commit"`` or ``outcome="abort"`` (plus
#: ``reason=`` for aborts).
GUESS = "guess"
#: One thread (or sequential process) executing one program segment.
SEGMENT = "segment"
#: A server servicing one request (pipelining/promise baselines).
SERVICE = "service"

#: Instant events.
SEND = "send"
RECV = "recv"
EMIT = "emit"
CONTROL = "control"
ROLLBACK = "rollback"
REPLAY = "replay"
CONTINUATION = "continuation"
ORPHAN = "orphan"
TIMER = "timer"
CDG_EDGE = "cdg_edge"
COMPLETE = "complete"

#: Kinds that are interval spans (may have positive duration).
INTERVAL_KINDS = frozenset({GUESS, SEGMENT, SERVICE})
#: Kinds that are zero-duration instants.
EVENT_KINDS = frozenset({
    SEND, RECV, EMIT, CONTROL, ROLLBACK, REPLAY, CONTINUATION,
    ORPHAN, TIMER, CDG_EDGE, COMPLETE,
})
#: The full shared vocabulary.
ALL_KINDS = INTERVAL_KINDS | EVENT_KINDS

#: ``outcome=`` attribute values a resolved GUESS span closes with.
COMMIT_OUTCOME = "commit"
ABORT_OUTCOME = "abort"


@dataclass(slots=True)
class Span:
    """One interval (or instant) of a run, in virtual time."""

    sid: int                         #: stable id, creation order
    kind: str                        #: one of the module-level kind names
    name: str                        #: display name (guess key, segment...)
    process: str                     #: owning process ("" = the substrate)
    start: float                     #: virtual start time
    end: Optional[float] = None      #: virtual end time (None while open)
    parent: Optional[int] = None     #: sid of the enclosing span, if any
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: wall-clock observations (real backends only; see module docstring)
    wall_start: Optional[float] = None   #: perf_counter() of real labor start
    wall_end: Optional[float] = None     #: perf_counter() of real labor end
    worker: Optional[str] = None         #: pool worker (or "driver")
    wall_busy: Optional[float] = None    #: accumulated busy seconds (bursts)

    @property
    def duration(self) -> Optional[float]:
        """Virtual-time length, or ``None`` while the span is open."""
        if self.end is None:
            return None
        return self.end - self.start

    @property
    def instant(self) -> bool:
        """True for zero-duration event spans."""
        return self.end == self.start

    @property
    def wall_duration(self) -> Optional[float]:
        """Wall-clock envelope length, or ``None`` without both stamps."""
        if self.wall_start is None or self.wall_end is None:
            return None
        return self.wall_end - self.wall_start

    @property
    def wall_labor(self) -> Optional[float]:
        """Exact busy seconds when bursts were tallied, else the envelope.

        Single-burst spans (a client segment's one compute task) have
        identical busy and envelope; multi-burst spans (a server's serve
        loop) differ, and driver-annotated guess windows — stamped start
        and end separately — carry only the envelope.
        """
        if self.wall_busy is not None:
            return self.wall_busy
        return self.wall_duration

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form used by the JSONL exporter.

        Wall-clock fields are emitted only when captured, so virtual-only
        traces serialize exactly as they did before the dual-clock layer.
        """
        out = {
            "sid": self.sid,
            "kind": self.kind,
            "name": self.name,
            "process": self.process,
            "start": self.start,
            "end": self.end,
            "parent": self.parent,
            "attrs": dict(self.attrs),
        }
        if self.wall_start is not None or self.worker is not None:
            out["wall_start"] = self.wall_start
            out["wall_end"] = self.wall_end
            out["worker"] = self.worker
            if self.wall_busy is not None:
                out["wall_busy"] = self.wall_busy
        return out


def span_from_dict(data: Dict[str, Any]) -> Span:
    """Inverse of :meth:`Span.to_dict` (used to reload JSONL traces)."""
    return Span(
        sid=data["sid"], kind=data["kind"], name=data["name"],
        process=data["process"], start=data["start"], end=data.get("end"),
        parent=data.get("parent"), attrs=dict(data.get("attrs", {})),
        wall_start=data.get("wall_start"), wall_end=data.get("wall_end"),
        worker=data.get("worker"), wall_busy=data.get("wall_busy"),
    )


# ------------------------------------------------- protocol-log compatibility

def spans_from_protocol_log(protocol_log: Iterable[dict]) -> List[Span]:
    """Synthesize spans from a legacy ``protocol_log`` event list.

    The optimistic runtime keeps its dict-based protocol log even when
    tracing is off; this adapter lifts it into the span schema so every
    analysis (:mod:`repro.core.analysis`) has a single input type.  Guess
    lifecycles (``fork`` → first ``commit``/``abort``) become ``GUESS``
    interval spans; ``rollback`` and ``continuation`` entries become the
    corresponding events; every other entry becomes a generic instant
    event keyed by its protocol kind.
    """
    spans: List[Span] = []
    open_guesses: Dict[str, Span] = {}
    sid = 0
    for entry in protocol_log:
        kind = entry["kind"]
        time = entry["time"]
        process = entry["process"]
        if kind == "fork":
            span = Span(
                sid=sid, kind=GUESS, name=entry["guess"], process=process,
                start=time,
                attrs={"site": entry.get("site", "?")},
            )
            sid += 1
            spans.append(span)
            open_guesses[entry["guess"]] = span
        elif kind in ("commit", "abort"):
            span = open_guesses.pop(entry.get("guess", ""), None)
            if span is not None:
                span.end = time
                span.attrs["outcome"] = kind
                if kind == "abort" and entry.get("reason"):
                    span.attrs["reason"] = entry["reason"]
        elif kind == "rollback":
            spans.append(Span(
                sid=sid, kind=ROLLBACK, name="rollback", process=process,
                start=time, end=time,
                attrs={"tid": entry.get("tid"),
                       "position": entry.get("position")},
            ))
            sid += 1
        elif kind == "continuation":
            spans.append(Span(
                sid=sid, kind=CONTINUATION, name=entry.get("guess", ""),
                process=process, start=time, end=time,
                attrs={"tid": entry.get("tid")},
            ))
            sid += 1
        else:
            attrs = {k: v for k, v in entry.items()
                     if k not in ("kind", "time", "process")}
            spans.append(Span(
                sid=sid, kind=kind, name=kind, process=process,
                start=time, end=time, attrs=attrs,
            ))
            sid += 1
    return spans


def as_spans(source: Any) -> List[Span]:
    """Coerce any supported trace source into a span list.

    Accepts a span list, a protocol-log dict list, a run-result object
    (anything with ``spans`` and/or ``protocol_log`` attributes), or
    ``None``.  Result objects prefer real tracer spans and fall back to
    the protocol-log adapter, so analyses work whether or not tracing was
    enabled for the run.
    """
    if source is None:
        return []
    if hasattr(source, "spans") or hasattr(source, "protocol_log"):
        spans = getattr(source, "spans", None)
        if spans:
            return list(spans)
        return spans_from_protocol_log(getattr(source, "protocol_log", []))
    items = list(source)
    if not items:
        return []
    if isinstance(items[0], Span):
        return items
    if isinstance(items[0], dict) and "kind" in items[0]:
        return spans_from_protocol_log(items)
    raise TypeError(f"cannot interpret trace source {source!r}")
