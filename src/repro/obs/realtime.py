"""Wall-clock pool telemetry: utilization, waits, speculation efficiency.

The dual-clock spans (:mod:`repro.obs.spans`) say *where real labor went*;
this module turns them — plus the executor backend's per-task
``wall_records`` — into the report behind ``python -m repro profile
--wall`` and the wall section of ``BENCH_obs.json``:

* **per-worker utilization**: busy wall seconds per pool worker over the
  observed labor window (first labor start → last labor end);
* **queue-wait** (submit → worker pickup) and **gate-block** (driver
  stalled on an unfinished future at placeholder pop) distributions;
* **speculation efficiency** = committed wall labor / total wall labor,
  the dual-clock analogue of the virtual wasted-work fraction — computed
  by :func:`repro.obs.forensics.wasted_work` from the very spans whose
  virtual accounting the conservation gate already checks.

Everything here is pure post-processing: it reads spans and records, so
a persisted dual-clock JSONL trace can be profiled after the fact (the
record-based histograms are then simply absent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .forensics import WastedWork, wasted_work
from .spans import SEGMENT, SERVICE, as_spans

#: Worker label the runtime uses for driver-side wall stamps (guess
#: windows); excluded from pool utilization — the driver is not a worker.
DRIVER = "driver"


def summarize_values(values: List[float]) -> Dict[str, float]:
    """Compact distribution summary (count/total/mean/p50/p90/max)."""
    if not values:
        return {"count": 0, "total": 0.0, "mean": 0.0,
                "p50": 0.0, "p90": 0.0, "max": 0.0}
    ordered = sorted(values)
    n = len(ordered)

    def pct(q: float) -> float:
        return ordered[min(n - 1, int(q * n))]

    total = sum(ordered)
    return {"count": n, "total": total, "mean": total / n,
            "p50": pct(0.50), "p90": pct(0.90), "max": ordered[-1]}


@dataclass
class WorkerStats:
    """Observed labor of one pool worker."""

    name: str
    busy: float = 0.0           #: total wall seconds executing labor
    tasks: int = 0
    first: Optional[float] = None
    last: Optional[float] = None

    def utilization(self, window: float) -> float:
        return self.busy / window if window > 0 else 0.0

    def to_dict(self, window: float) -> Dict[str, Any]:
        return {"busy": self.busy, "tasks": self.tasks,
                "utilization": self.utilization(window)}


@dataclass
class PoolReport:
    """One run's wall-clock pool telemetry."""

    window: float = 0.0                 #: first labor start → last labor end
    workers: Dict[str, WorkerStats] = field(default_factory=dict)
    queue_wait: Dict[str, float] = field(default_factory=dict)
    gate_block: Dict[str, float] = field(default_factory=dict)
    cancelled_tasks: int = 0
    #: substrate-health telemetry (repro.exec.watchdog): tasks whose real
    #: labor could not be earned, and workers declared dead mid-run
    task_failures: int = 0
    dead_workers: int = 0
    wasted: WastedWork = field(default_factory=WastedWork)

    @property
    def speculation_efficiency(self) -> Optional[float]:
        return self.wasted.speculation_efficiency

    @property
    def total_busy(self) -> float:
        return sum(w.busy for w in self.workers.values())

    def mean_utilization(self) -> float:
        if not self.workers:
            return 0.0
        return (sum(w.utilization(self.window) for w in self.workers.values())
                / len(self.workers))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "window": self.window,
            "workers": {name: w.to_dict(self.window)
                        for name, w in sorted(self.workers.items())},
            "mean_utilization": self.mean_utilization(),
            "queue_wait": dict(self.queue_wait),
            "gate_block": dict(self.gate_block),
            "cancelled_tasks": self.cancelled_tasks,
            "task_failures": self.task_failures,
            "dead_workers": self.dead_workers,
            "speculation_efficiency": self.speculation_efficiency,
            "wall_labor": {
                "committed": self.wasted.wall_committed,
                "wasted": self.wasted.wall_wasted,
                "unresolved": self.wasted.wall_unresolved,
                "total": self.wasted.wall_total,
            },
        }

    def render(self) -> str:
        """Human-readable report (``python -m repro profile --wall``)."""
        lines = ["wall-clock pool report"]
        if not self.workers:
            lines.append("  no wall-annotated labor recorded — run on a "
                         "pool backend with a tracer attached")
            return "\n".join(lines)
        lines.append(f"  labor window: {self.window * 1000:.1f} ms, "
                     f"{len(self.workers)} worker(s), "
                     f"busy {self.total_busy * 1000:.1f} ms "
                     f"(mean utilization {self.mean_utilization():.1%})")
        lines.append(f"  {'worker':<20} {'busy(ms)':>9} {'util':>7} "
                     f"{'tasks':>6}")
        for name, w in sorted(self.workers.items()):
            lines.append(f"  {name:<20} {w.busy * 1000:>9.1f} "
                         f"{w.utilization(self.window):>6.1%} {w.tasks:>6}")
        for label, dist in (("queue wait", self.queue_wait),
                            ("gate block", self.gate_block)):
            if dist.get("count"):
                lines.append(
                    f"  {label}: n={dist['count']} "
                    f"mean={dist['mean'] * 1000:.2f}ms "
                    f"p50={dist['p50'] * 1000:.2f}ms "
                    f"p90={dist['p90'] * 1000:.2f}ms "
                    f"max={dist['max'] * 1000:.2f}ms")
        if self.cancelled_tasks:
            lines.append(f"  cancelled tasks settled: {self.cancelled_tasks}")
        if self.task_failures or self.dead_workers:
            lines.append(f"  substrate health: {self.task_failures} "
                         f"task failure(s), {self.dead_workers} dead "
                         f"worker(s) — see result.exec_failures")
        eff = self.speculation_efficiency
        if eff is not None:
            w = self.wasted
            lines.append(
                f"  speculation efficiency: {eff:.1%} "
                f"(committed {w.wall_committed * 1000:.1f} ms / total "
                f"{w.wall_total * 1000:.1f} ms; wasted "
                f"{w.wall_wasted * 1000:.1f} ms, unresolved "
                f"{w.wall_unresolved * 1000:.1f} ms)")
        return "\n".join(lines)


def pool_report(source, records: Optional[List[dict]] = None, *,
                backend=None) -> PoolReport:
    """Build the telemetry report from spans (+ backend wall records).

    ``source`` is any span source (:func:`repro.obs.spans.as_spans`);
    ``records`` is an executor backend's ``wall_records`` list — one entry
    per pool task, which gives exact per-worker attribution (a long-lived
    serve span can burst on several workers but keeps only the last label)
    plus the queue-wait/gate-block distributions and cancelled-task counts
    that spans alone cannot carry.  Pass ``backend.wall_records`` for live
    runs; with only a persisted trace, worker accounting falls back to the
    spans' burst envelopes.  ``backend`` (the executor backend itself)
    additionally folds in substrate health: settled task failures and
    workers declared dead by the watchdog.
    """
    report = PoolReport()
    if backend is not None:
        report.task_failures = len(getattr(backend, "task_errors", ()))
        report.dead_workers = len(getattr(backend, "dead_workers", ()))
    spans = as_spans(source)
    report.wasted = wasted_work(spans)

    def tally(worker: str, start: float, end: float) -> None:
        w = report.workers.setdefault(worker, WorkerStats(worker))
        w.busy += end - start
        w.tasks += 1
        w.first = start if w.first is None else min(w.first, start)
        w.last = end if w.last is None else max(w.last, end)

    waits: List[float] = []
    blocks: List[float] = []
    for rec in records or ():
        if rec.get("cancelled"):
            report.cancelled_tasks += 1
        submit, start = rec.get("submit"), rec.get("start")
        if submit is not None and start is not None:
            waits.append(max(0.0, start - submit))
        block = rec.get("gate_block", 0.0)
        if block > 0.0:
            blocks.append(block)
        end = rec.get("end")
        if start is not None and end is not None:
            tally(rec.get("worker") or "?", start, end)
    report.queue_wait = summarize_values(waits)
    report.gate_block = summarize_values(blocks)

    if not report.workers:
        # Persisted-trace fallback: burst envelopes from the spans.
        for s in spans:
            if (s.kind in (SEGMENT, SERVICE)
                    and s.wall_start is not None and s.wall_end is not None
                    and s.worker is not None and s.worker != DRIVER):
                tally(s.worker, s.wall_start, s.wall_end)
    if report.workers:
        epoch = min(w.first for w in report.workers.values())
        horizon = max(w.last for w in report.workers.values())
        report.window = horizon - epoch
    return report
