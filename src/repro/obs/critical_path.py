"""Virtual-time critical path: the chain that explains the makespan.

The speedup call streaming buys is bounded not by total work but by the
longest chain of *committed* work linked by happens-before edges — the
quantity behind the C11 anatomy experiment (``bench_c11_anatomy``).
This module extracts that chain from any span source:

* **nodes** are committed segment/service intervals (discarded work by
  definition cannot explain the makespan, so ``destroyed`` and
  ``rolled_back`` intervals are excluded);
* **edges** are execution order within one lane (one ``(process, tid)``
  pair) plus cross-process message edges, FIFO-matching each ``recv``
  event to the earliest unmatched ``send`` from its source process;
* the **critical path** is the chain maximizing covered virtual time,
  counted without double-charging overlap:
  ``work = Σ max(0, end_i - max(start_i, end_{i-1}))``.

``utilization = work / makespan`` is then in ``[0, 1]``: 1.0 means the
makespan is fully explained by one serial chain of committed work (no
speculation could shorten it further without shortening the chain);
low values mean the run spent its time waiting or re-executing.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .spans import RECV, SEGMENT, SEND, SERVICE, Span, as_spans

#: segment outcomes whose work was undone — never on the critical path.
_DISCARDED = ("destroyed", "rolled_back")


@dataclass
class PathStep:
    """One interval on the critical path."""

    sid: int
    kind: str
    name: str
    process: str
    start: float
    end: float
    #: virtual time this step adds to the chain (overlap-free)
    contribution: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sid": self.sid, "kind": self.kind, "name": self.name,
            "process": self.process, "start": self.start, "end": self.end,
            "contribution": self.contribution,
        }


@dataclass
class CriticalPath:
    """The longest committed chain of one run, plus its accounting."""

    steps: List[PathStep] = field(default_factory=list)
    work: float = 0.0           #: overlap-free virtual time on the chain
    makespan: float = 0.0
    committed_total: float = 0.0  #: all committed interval time in the run

    @property
    def utilization(self) -> float:
        """Fraction of the makespan explained by the chain, in [0, 1]."""
        if self.makespan <= 0:
            return 1.0 if not self.steps else 0.0
        return min(1.0, self.work / self.makespan)

    def lines(self, limit: int = 20) -> List[str]:
        out = [
            f"critical path: {len(self.steps)} step(s), work={self.work:g} "
            f"over makespan={self.makespan:g} "
            f"(utilization {self.utilization:.1%})",
        ]
        shown = self.steps if len(self.steps) <= limit else (
            self.steps[: limit // 2] + self.steps[-(limit - limit // 2):])
        elided = len(self.steps) - len(shown)
        for i, step in enumerate(shown):
            if elided and i == limit // 2:
                out.append(f"  ... {elided} step(s) elided ...")
            out.append(
                f"  {step.start:>8g}..{step.end:<8g} {step.process}"
                f" {step.kind}:{step.name} (+{step.contribution:g})")
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "work": self.work,
            "makespan": self.makespan,
            "utilization": self.utilization,
            "committed_total": self.committed_total,
            "steps": [s.to_dict() for s in self.steps],
        }


def _lane(span: Span) -> Tuple[str, Any]:
    attrs = span.attrs
    return (span.process, attrs.get("tid", attrs.get("pid", -1)))


def critical_path(source) -> CriticalPath:
    """Extract the makespan-explaining chain from any span source."""
    spans = as_spans(source)
    makespan = max((s.end for s in spans if s.end is not None), default=0.0)
    nodes = [
        s for s in spans
        if s.kind in (SEGMENT, SERVICE)
        and s.end is not None
        and s.attrs.get("outcome") not in _DISCARDED
    ]
    result = CriticalPath(makespan=makespan)
    result.committed_total = sum(s.end - s.start for s in nodes)
    if not nodes:
        return result

    preds: Dict[int, set] = defaultdict(set)

    # Intra-lane edges: consecutive intervals of one (process, tid) lane.
    lanes: Dict[Tuple[str, Any], List[Span]] = defaultdict(list)
    for s in nodes:
        lanes[_lane(s)].append(s)
    for lane in lanes.values():
        lane.sort(key=lambda s: (s.start, s.sid))
        for prev, nxt in zip(lane, lane[1:]):
            preds[nxt.sid].add(prev.sid)

    # Cross-process message edges: FIFO-match recv events to sends.
    by_process: Dict[str, List[Span]] = defaultdict(list)
    for s in nodes:
        by_process[s.process].append(s)
    for lst in by_process.values():
        lst.sort(key=lambda s: (s.start, s.sid))

    def covering(process: str, t: float) -> Optional[Span]:
        """The latest interval of ``process`` starting at or before ``t``
        (else the earliest one after it)."""
        lst = by_process.get(process)
        if not lst:
            return None
        best = None
        for s in lst:
            if s.start <= t:
                best = s
            elif best is None:
                return s
            else:
                break
        return best

    sends: Dict[Tuple[str, str], deque] = defaultdict(deque)
    for s in spans:
        if s.kind == SEND and s.attrs.get("dst"):
            sends[(s.process, s.attrs["dst"])].append(s)
    for r in spans:
        if r.kind != RECV or not r.attrs.get("src"):
            continue
        queue = sends.get((r.attrs["src"], r.process))
        if not queue:
            continue
        snd = queue.popleft()
        u = covering(snd.process, snd.start)
        v = covering(r.process, r.start)
        if u is not None and v is not None and u.sid != v.sid:
            # Admissible only forward in completion order — this keeps
            # the graph acyclic even when two processes exchange messages
            # within long-lived intervals.
            if (u.end, u.sid) < (v.end, v.sid):
                preds[v.sid].add(u.sid)

    # Longest chain by covered time: process nodes in completion order,
    # extending each predecessor chain without double-charging overlap.
    order = sorted(nodes, key=lambda s: (s.end, s.sid))
    by_sid = {s.sid: s for s in nodes}
    best: Dict[int, float] = {}
    back: Dict[int, Optional[int]] = {}
    frontier: Dict[int, float] = {}   # sid -> chain end time
    for s in order:
        choice, choice_work = None, 0.0
        for p in preds[s.sid]:
            if p not in best:
                continue
            gain = best[p] + max(0.0, s.end - max(s.start, frontier[p]))
            if choice is None or gain > choice_work:
                choice, choice_work = p, gain
        if choice is None:
            choice_work = s.end - s.start
        best[s.sid] = choice_work
        back[s.sid] = choice
        frontier[s.sid] = s.end

    tail = max(best, key=lambda sid: (best[sid], -sid))
    chain: List[int] = []
    cur: Optional[int] = tail
    while cur is not None:
        chain.append(cur)
        cur = back[cur]
    chain.reverse()

    prev_end: Optional[float] = None
    for sid in chain:
        s = by_sid[sid]
        contrib = s.end - s.start if prev_end is None else max(
            0.0, s.end - max(s.start, prev_end))
        result.steps.append(PathStep(
            sid=s.sid, kind=s.kind, name=s.name, process=s.process,
            start=s.start, end=s.end, contribution=contrib,
        ))
        prev_end = s.end
    result.work = sum(step.contribution for step in result.steps)
    return result
