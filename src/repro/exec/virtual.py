"""The virtual-time backend: the DES as a sequential-equivalence oracle.

This is the default backend and the reference semantics.  It adds *zero*
overhead over the pre-backend runtime: :meth:`submit_segment` is exactly
the old ``scheduler.after(...)`` call and returns the raw
:class:`~repro.sim.events.Event`, so the kernel-throughput bench
(``repro.bench.kernel``) measures the same hot path as before the
runtime/substrate split.

Every real backend is gated against this one: same committed outputs,
same trace, same makespan, on every chaos schedule
(``repro.bench.parallel``).

It is also the graceful-degradation target: when a
:class:`~repro.exec.watchdog.FallbackPolicy` demotes a sick pool backend
mid-run, later submissions become exactly the ``scheduler.after`` call
below — which is why demotion preserves byte-equal committed output.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.exec.api import ExecutorBackend, ExecutorCapabilities, Work


class VirtualTimeBackend(ExecutorBackend):
    """Single-threaded discrete-event execution (the paper's simulator)."""

    capabilities = ExecutorCapabilities(
        name="virtual",
        real_time=False,
        parallel=False,
        # nothing ever blocks for real, so cancellation is always immediate
        cancel_blocked_work=True,
        requires_picklable=False,
    )

    def submit_segment(self, delay: float, resume: Callable[[], None], *,
                       label: str = "", work: Optional[Work] = None,
                       span_sid: int = -1):
        # ``work`` payloads are effect-free real labor; in virtual time the
        # modelled ``delay`` already stands for them, so they are skipped —
        # and with no real clock there is nothing to annotate ``span_sid``
        # with either.
        return self.scheduler.after(delay, resume, label=label)

    def counters(self) -> dict:
        return {"exec.workers": 0}
