"""Real-hardware backends: OS-thread and process pools under the DES.

Both backends keep the virtual-time substrate authoritative (see
:mod:`repro.exec.api` for the placeholder-event design) and differ only
in where the real labor runs and how cancellation reaches it:

* :class:`ThreadPoolBackend` — ``concurrent.futures`` threads.  Right for
  latency-bound work (real ``time.sleep``, socket I/O) where the GIL is
  released while blocked.  Cancellation is prompt: the cancel token wakes
  a payload blocked in :meth:`~repro.exec.api.WorkContext.sleep`.
* :class:`ProcessPoolBackend` — a process pool for CPU-bound payloads.
  Payloads must be picklable (module-level callables or ``partial`` of
  them — lint rule SA501 flags closures); the cancel token cannot cross
  the process boundary, so cancellation of *running* work is best-effort
  and only the result-discard guarantee holds.

``realize_scale`` makes the pools earn their keep on unmodified
workloads: every live :class:`~repro.csp.effects.Compute` duration ``d``
is realized as a real sleep of ``d * realize_scale`` seconds on a worker.
The chaos-parity gate in ``repro.bench.parallel`` uses this so all 24
fault schedules genuinely exercise submission, overlap, and
abort-triggered cancellation without touching the workloads.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import CancelledError, Executor, ProcessPoolExecutor, \
    ThreadPoolExecutor
from functools import partial
from time import perf_counter
from typing import Callable, List, Optional

from repro.exec.api import (
    CancelledWork,
    ExecutorBackend,
    ExecutorCapabilities,
    TaskHandle,
    Work,
    WorkContext,
)


def _timed_work(seconds: float, ctx: WorkContext) -> None:
    """Realized sleep standing in for ``Compute(duration)`` labor.

    Module-level (not a closure) so the process backend can pickle the
    ``partial(_timed_work, seconds)`` payload.
    """
    ctx.sleep(seconds)


def _walled_work(work: Work, ctx: WorkContext):
    """Run ``work`` and report its wall window from inside a pool process.

    Handle fields cannot be written across a process boundary, so the
    process backend ships this picklable wrapper instead and reads the
    ``(wall_start, wall_end, worker)`` tuple off the future at settle
    time.  Payload results are discarded by contract, so hijacking the
    return value is free.
    """
    t0 = perf_counter()
    work(ctx)
    return (t0, perf_counter(), multiprocessing.current_process().name)


class _PoolBackend(ExecutorBackend):
    """Shared machinery: placeholder gating, cancel tokens, drain."""

    def __init__(self, workers: int = 8, *,
                 realize_scale: float = 0.0) -> None:
        super().__init__()
        if workers < 1:
            raise ValueError(f"workers must be >= 1: {workers!r}")
        self.workers = workers
        #: seconds of real sleep per unit of live Compute virtual time
        #: (0.0 = only explicit ``Compute(work=...)`` payloads run for real)
        self.realize_scale = realize_scale
        self._pool: Optional[Executor] = None
        #: submitted-but-unsettled handles; the gate removes fired tasks,
        #: :meth:`drain` settles cancelled ones
        self._inflight: set = set()
        self.tasks_submitted = 0
        self.tasks_completed = 0
        self.tasks_cancelled = 0
        #: placeholders popped before their real work finished — i.e. how
        #: often real time was on the driver's critical path
        self.gate_waits = 0
        self.pool_spinups = 0
        #: dual-clock capture: one record per settled real task while a
        #: tracer records (``repro.obs.realtime`` reads these)
        self.wall_records: List[dict] = []
        self.wall_annotated = 0
        self._wall_on = False

    def bind(self, *, max_steps: int, tracer=None):
        scheduler = super().bind(max_steps=max_steps, tracer=tracer)
        # One flag decides the whole dual-clock path: with no recording
        # tracer, submission and gating run exactly the pre-dual-clock
        # code (zero per-task clock reads or allocations).
        self._wall_on = bool(tracer is not None
                             and getattr(tracer, "enabled", False))
        return scheduler

    def wall_now(self) -> Optional[float]:
        return perf_counter()

    # ----------------------------------------------- subclass obligations

    def _make_pool(self) -> Executor:
        raise NotImplementedError

    def _new_token(self):
        """Cancel token (``set()``/``is_set()``/``wait()``) or ``None``."""
        raise NotImplementedError

    def _submit_work(self, pool: Executor, work: Work, ctx: WorkContext):
        return pool.submit(work, ctx)

    # ----------------------------------------------------------- submission

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            self._pool = self._make_pool()
            self.pool_spinups += 1
        return self._pool

    def submit_segment(self, delay: float, resume: Callable[[], None], *,
                       label: str = "", work: Optional[Work] = None,
                       span_sid: int = -1):
        if work is None:
            if self.realize_scale > 0.0 and delay > 0.0:
                work = partial(_timed_work, delay * self.realize_scale)
            else:
                # nothing real to do: identical to the virtual backend
                return self.scheduler.after(delay, resume, label=label)
        handle = TaskHandle(label=label)
        token = self._new_token()
        handle._token = token
        handle._backend = self
        if self._wall_on:
            handle.span_sid = span_sid
            handle.wall_submit = perf_counter()
            work = self._wrap_work(work, handle)
        handle.future = self._submit_work(
            self._ensure_pool(), work, WorkContext(token))
        self.tasks_submitted += 1
        self._inflight.add(handle)

        def gate() -> None:
            # Fires at the placeholder's virtual time, on the driver
            # thread, in exactly the event order the oracle would use.
            future = handle.future
            blocked = not future.done()
            if blocked:
                self.gate_waits += 1
            wait0 = perf_counter() if (blocked and self._wall_on) else None
            result = None
            try:
                result = future.result()
            except (CancelledWork, CancelledError):
                pass  # result discarded; the virtual duration still stands
            self.tasks_completed += 1
            self._inflight.discard(handle)
            handle._backend = None
            if self._wall_on:
                block = 0.0 if wait0 is None else perf_counter() - wait0
                self._settle_wall(handle, result, gate_block=block,
                                  cancelled=False)
            resume()

        # The placeholder allocates the same (time, priority, seq) slot the
        # virtual backend would — this is the whole equivalence argument.
        handle._event = self.scheduler.after(delay, gate, label=label)
        return handle

    # ----------------------------------------------------- dual-clock capture

    def _wrap_work(self, work: Work, handle: TaskHandle) -> Work:
        """Stamp the handle with the labor's wall window and worker.

        In-process pools can write the handle directly from the worker;
        the ``finally`` keeps the end stamp even when cancellation raises
        :class:`CancelledWork` out of the payload mid-sleep.
        """
        def walled(ctx: WorkContext):
            handle.wall_worker = threading.current_thread().name
            handle.wall_start = perf_counter()
            try:
                return work(ctx)
            finally:
                handle.wall_end = perf_counter()
        return walled

    def _extract_wall(self, handle: TaskHandle, result) -> None:
        """Recover wall stamps the wrapper could not write directly."""

    def _settle_wall(self, handle: TaskHandle, result, *,
                     gate_block: float, cancelled: bool) -> None:
        """Annotate the segment span and keep one wall record per task."""
        self._extract_wall(handle, result)
        tracer = self.tracer
        if (tracer is not None and handle.span_sid >= 0
                and handle.wall_start is not None):
            tracer.annotate_wall(
                handle.span_sid, start=handle.wall_start,
                end=handle.wall_end,
                worker=handle.wall_worker or "worker")
            self.wall_annotated += 1
        self.wall_records.append({
            "label": handle.label, "sid": handle.span_sid,
            "submit": handle.wall_submit, "start": handle.wall_start,
            "end": handle.wall_end, "worker": handle.wall_worker,
            "gate_block": gate_block, "cancelled": cancelled,
        })

    def _note_task_cancelled(self, handle: TaskHandle) -> None:
        self.tasks_cancelled += 1
        # stays in _inflight until drain() settles its future

    # ------------------------------------------------------------- teardown

    def drain(self) -> None:
        for handle in list(self._inflight):
            future = handle.future
            if handle.cancelled:
                result = None
                if future is not None:
                    try:
                        result = future.result()
                    except Exception:
                        pass  # discarded by contract
                self._inflight.discard(handle)
                if self._wall_on:
                    # Cancelled labor settles here, after its span was
                    # closed by the abort path — annotate_wall works on
                    # closed spans for exactly this reason.
                    self._settle_wall(handle, result, gate_block=0.0,
                                      cancelled=True)
            elif future is not None and future.done():
                pass  # settled; its gate is still queued and will fire
        # At quiescence no more work can arrive: release the workers so a
        # finished system leaks no threads/processes.  A later run(until=)
        # resumption lazily spins a fresh pool up.
        if self.scheduler is not None \
                and self.scheduler.queue.peek_time() is None:
            self.shutdown()

    def shutdown(self) -> None:
        pool = self._pool
        if pool is not None:
            self._pool = None
            pool.shutdown(wait=True)

    def pending(self) -> int:
        return len(self._inflight)

    def counters(self) -> dict:
        labor = 0.0
        block = 0.0
        for rec in self.wall_records:
            if rec["start"] is not None and rec["end"] is not None:
                labor += rec["end"] - rec["start"]
            block += rec["gate_block"]
        return {
            "exec.workers": self.workers,
            "exec.tasks_submitted": self.tasks_submitted,
            "exec.tasks_completed": self.tasks_completed,
            "exec.tasks_cancelled": self.tasks_cancelled,
            "exec.gate_waits": self.gate_waits,
            "exec.pool_spinups": self.pool_spinups,
            "wall.records": len(self.wall_records),
            "wall.annotated": self.wall_annotated,
            "wall.labor_ms": int(labor * 1000),
            "wall.gate_block_ms": int(block * 1000),
        }


class ThreadPoolBackend(_PoolBackend):
    """Speculative segments on real OS threads (latency-bound work)."""

    capabilities = ExecutorCapabilities(
        name="thread",
        real_time=True,
        parallel=True,
        cancel_blocked_work=True,
        requires_picklable=False,
    )

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-exec")

    def _new_token(self):
        return threading.Event()


class ProcessPoolBackend(_PoolBackend):
    """Speculative segments on a process pool (CPU-bound work).

    Work payloads cross a process boundary: they must be picklable and
    cannot see the cancel token, so ``cancel()`` only prevents *unstarted*
    work from running (``Future.cancel``) and guarantees that a started
    task's result is discarded.
    """

    capabilities = ExecutorCapabilities(
        name="process",
        real_time=True,
        parallel=True,
        cancel_blocked_work=False,
        requires_picklable=True,
    )

    def _make_pool(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.workers)

    def _new_token(self):
        return None  # tokens cannot cross the process boundary

    def _wrap_work(self, work: Work, handle: TaskHandle) -> Work:
        # Closures don't pickle; ship the module-level wrapper instead.
        return partial(_walled_work, work)

    def _extract_wall(self, handle: TaskHandle, result) -> None:
        if type(result) is tuple and len(result) == 3:
            handle.wall_start, handle.wall_end, handle.wall_worker = result
