"""Real-hardware backends: OS-thread and process pools under the DES.

Both backends keep the virtual-time substrate authoritative (see
:mod:`repro.exec.api` for the placeholder-event design) and differ only
in where the real labor runs and how cancellation reaches it:

* :class:`ThreadPoolBackend` — ``concurrent.futures`` threads.  Right for
  latency-bound work (real ``time.sleep``, socket I/O) where the GIL is
  released while blocked.  Cancellation is prompt: the cancel token wakes
  a payload blocked in :meth:`~repro.exec.api.WorkContext.sleep`.
* :class:`ProcessPoolBackend` — a process pool for CPU-bound payloads.
  Payloads must be picklable (module-level callables or ``partial`` of
  them — lint rule SA501 flags closures); the cancel token cannot cross
  the process boundary, so cancellation of *running* work is best-effort
  and only the result-discard guarantee holds.

``realize_scale`` makes the pools earn their keep on unmodified
workloads: every live :class:`~repro.csp.effects.Compute` duration ``d``
is realized as a real sleep of ``d * realize_scale`` seconds on a worker.
The chaos-parity gate in ``repro.bench.parallel`` uses this so all 24
fault schedules genuinely exercise submission, overlap, and
abort-triggered cancellation without touching the workloads.

Fault tolerance (docs/BACKENDS.md, "Fault tolerance"): because payloads
are effect-free and the placeholder events are untouched, losing labor is
never a correctness problem — so the backends *recover* instead of
crashing.  A :class:`~repro.exec.watchdog.RecoveryPolicy` bounds gate
waits with a monotonic watchdog deadline, respawns broken pools
(``BrokenProcessPool``), retries transient losses (dead worker, lost
result) with bounded backoff, quarantines deterministically failing
payloads by label, and — under a
:class:`~repro.exec.watchdog.FallbackPolicy` — demotes a sick pool to
virtual passthrough mid-run, preserving byte-equal committed output.
An :class:`~repro.sim.faults.ExecFaultPlan` (``exec_faults=``) injects
exactly these faults, seeded, for the chaos harness.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
import traceback as traceback_module
from concurrent.futures import BrokenExecutor, CancelledError, Executor, \
    ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from functools import partial
from time import perf_counter
from typing import Callable, Dict, List, Optional

from repro.exec.api import (
    CancelledWork,
    ExecutorBackend,
    ExecutorCapabilities,
    TaskHandle,
    Work,
    WorkContext,
)
from repro.exec.faults import (
    LOST_RESULT,
    ExecFaultInjector,
    PoisonedPayload,
    WorkerKilled,
    hung_work,
    killed_work,
    lost_work,
    poisoned_work,
)
from repro.exec.watchdog import (
    TRANSIENT_KINDS,
    RecoveryPolicy,
    SegmentFailure,
    Watchdog,
)
from repro.sim.faults import ExecFaultPlan


def _timed_work(seconds: float, ctx: WorkContext) -> None:
    """Realized sleep standing in for ``Compute(duration)`` labor.

    Module-level (not a closure) so the process backend can pickle the
    ``partial(_timed_work, seconds)`` payload.
    """
    ctx.sleep(seconds)


def _walled_work(work: Work, ctx: WorkContext):
    """Run ``work`` and report its wall window from inside a pool process.

    Handle fields cannot be written across a process boundary, so the
    process backend ships this picklable wrapper instead and reads the
    ``(wall_start, wall_end, worker)`` tuple off the future at settle
    time.  Payload results are discarded by contract, so hijacking the
    return value is free — except for the fault plane's lost-result
    sentinel, which must survive the trip so the gate can detect it.
    """
    t0 = perf_counter()
    result = work(ctx)
    if result == LOST_RESULT:
        return result
    return (t0, perf_counter(), multiprocessing.current_process().name)


def _classify_exception(exc: BaseException) -> str:
    """Failure kind for an exception a settled payload raised."""
    if isinstance(exc, WorkerKilled) or isinstance(exc, BrokenExecutor):
        return "worker_death"
    if isinstance(exc, PoisonedPayload):
        return "poison"
    return "error"


class _PoolBackend(ExecutorBackend):
    """Shared machinery: placeholder gating, cancel tokens, drain,
    fault injection and the detection/recovery loop."""

    def __init__(self, workers: int = 8, *,
                 realize_scale: float = 0.0,
                 exec_faults: Optional[ExecFaultPlan] = None,
                 recovery: Optional[RecoveryPolicy] = None) -> None:
        super().__init__()
        if workers < 1:
            raise ValueError(f"workers must be >= 1: {workers!r}")
        self.workers = workers
        #: seconds of real sleep per unit of live Compute virtual time
        #: (0.0 = only explicit ``Compute(work=...)`` payloads run for real)
        self.realize_scale = realize_scale
        #: detection/recovery knobs; the default policy has no watchdog
        #: deadline and no fallback — pre-recovery behavior, plus bounded
        #: retry on genuinely broken pools
        self.recovery = recovery if recovery is not None else RecoveryPolicy()
        self.recovery.validate()
        self._watchdog: Optional[Watchdog] = (
            Watchdog(self.recovery.deadline, self.recovery.grace)
            if self.recovery.deadline is not None else None)
        #: seeded exec-fault plan (None = no injection, zero overhead)
        self._exec_plan = exec_faults
        self._injector: Optional[ExecFaultInjector] = (
            ExecFaultInjector(exec_faults) if exec_faults is not None
            else None)
        self._pool: Optional[Executor] = None
        #: pools retired mid-run (hung worker, BrokenProcessPool); shut
        #: down without waiting so a zombie can never block the driver
        self._zombies: List[Executor] = []
        #: submitted-but-unsettled handles; the gate removes fired tasks,
        #: :meth:`drain` settles cancelled ones
        self._inflight: set = set()
        #: task labels whose payload failed deterministically too often;
        #: their later submissions skip real labor (semantically free)
        self._quarantined: set = set()
        #: workers declared dead (abandoned past the watchdog grace) —
        #: worker name -> perf_counter() at declaration; feeds the
        #: dead-worker validation rule in :mod:`repro.obs.validate`
        self.dead_workers: Dict[str, float] = {}
        self.tasks_submitted = 0
        self.tasks_completed = 0
        self.tasks_cancelled = 0
        #: placeholders popped before their real work finished — i.e. how
        #: often real time was on the driver's critical path
        self.gate_waits = 0
        self.pool_spinups = 0
        # fault-plane telemetry (exec.fault.* / exec.retry.* /
        # exec.fallback.* counters; plain ints, pull-based)
        self.kills_injected = 0
        self.hangs_injected = 0
        self.poison_injected = 0
        self.results_lost = 0
        self.sched_kills = 0
        self.quarantine_skips = 0
        self.fault_events = 0
        self.retries = 0
        self.respawns = 0
        self.retry_exhausted = 0
        self.demotions = 0
        self.fallback_virtual = 0
        self.fallback_reason = ""
        self._pending_kills = 0
        #: dual-clock capture: one record per settled real task while a
        #: tracer records (``repro.obs.realtime`` reads these)
        self.wall_records: List[dict] = []
        self.wall_annotated = 0
        self._wall_on = False

    def bind(self, *, max_steps: int, tracer=None):
        scheduler = super().bind(max_steps=max_steps, tracer=tracer)
        # One flag decides the whole dual-clock path: with no recording
        # tracer, submission and gating run exactly the pre-dual-clock
        # code (zero per-task clock reads or allocations).
        self._wall_on = bool(tracer is not None
                             and getattr(tracer, "enabled", False))
        if self._exec_plan is not None:
            for spec in self._exec_plan.kills:
                scheduler.at(spec.at, partial(self._fire_kill, spec.kills),
                             label="exec.worker_kill")
        return scheduler

    def wall_now(self) -> Optional[float]:
        return perf_counter()

    # ----------------------------------------------- subclass obligations

    def _make_pool(self) -> Executor:
        raise NotImplementedError

    def _new_token(self):
        """Cancel token (``set()``/``is_set()``/``wait()``) or ``None``."""
        raise NotImplementedError

    def _submit_work(self, pool: Executor, work: Work, ctx: WorkContext):
        return pool.submit(work, ctx)

    # ----------------------------------------------------------- submission

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            self._pool = self._make_pool()
            self.pool_spinups += 1
        return self._pool

    @property
    def quarantined(self) -> frozenset:
        """Task labels currently quarantined (skipping real labor)."""
        return frozenset(self._quarantined)

    @property
    def watchdog(self) -> Optional[Watchdog]:
        """The armed watchdog (None unless the policy set a deadline)."""
        return self._watchdog

    def _draw_fault(self) -> Optional[str]:
        """Fault verdict for the task being submitted (None = clean)."""
        if self._pending_kills > 0:
            # a scheduled kill found nothing in flight; it hits the next
            # submission instead so a kill never silently misses
            self._pending_kills -= 1
            self.sched_kills += 1
            return "kill"
        injector = self._injector
        if injector is None:
            return None
        return injector.draw(self.scheduler.now)

    def _faulted_work(self, kind: str, work: Work) -> Work:
        """Wrap ``work`` so the drawn fault manifests inside a worker."""
        if kind == "kill":
            self.kills_injected += 1
            return partial(killed_work, work)
        if kind == "hang":
            self.hangs_injected += 1
            return partial(hung_work, self._exec_plan.tasks.hang_extra, work)
        if kind == "poison":
            self.poison_injected += 1
            return partial(poisoned_work, work)
        self.results_lost += 1
        return partial(lost_work, work)

    def submit_segment(self, delay: float, resume: Callable[[], None], *,
                       label: str = "", work: Optional[Work] = None,
                       span_sid: int = -1):
        if work is None:
            if self.realize_scale > 0.0 and delay > 0.0:
                work = partial(_timed_work, delay * self.realize_scale)
            else:
                # nothing real to do: identical to the virtual backend
                return self.scheduler.after(delay, resume, label=label)
        if self.fallen_back:
            # demoted by the FallbackPolicy: pure virtual passthrough,
            # byte-equal to VirtualTimeBackend by construction
            self.fallback_virtual += 1
            return self.scheduler.after(delay, resume, label=label)
        if self._quarantined and label in self._quarantined:
            # quarantined label: skip the labor, keep the virtual event
            self.quarantine_skips += 1
            return self.scheduler.after(delay, resume, label=label)
        handle = TaskHandle(label=label)
        handle._seq = self.tasks_submitted
        handle._base_work = work
        token = self._new_token()
        handle._token = token
        handle._backend = self
        fault = self._draw_fault()
        if fault is not None:
            handle._fault = fault
            work = self._faulted_work(fault, work)
        if self._wall_on:
            handle.span_sid = span_sid
            handle.wall_submit = perf_counter()
            work = self._wrap_work(work, handle)
        try:
            handle.future = self._submit_work(
                self._ensure_pool(), work, WorkContext(token))
        except BrokenExecutor:
            self._respawn_pool()
            handle.future = self._submit_work(
                self._ensure_pool(), work, WorkContext(token))
        self.tasks_submitted += 1
        self._inflight.add(handle)

        def gate() -> None:
            # Fires at the placeholder's virtual time, on the driver
            # thread, in exactly the event order the oracle would use.
            future = handle.future
            blocked = not future.done()
            if blocked:
                self.gate_waits += 1
            wait0 = perf_counter() if (blocked and self._wall_on) else None
            result = self._settle(handle)
            self.tasks_completed += 1
            self._inflight.discard(handle)
            handle._backend = None
            if self._wall_on:
                block = 0.0 if wait0 is None else perf_counter() - wait0
                self._settle_wall(handle, result, gate_block=block,
                                  cancelled=False)
            resume()

        # The placeholder allocates the same (time, priority, seq) slot the
        # virtual backend would — this is the whole equivalence argument.
        handle._event = self.scheduler.after(delay, gate, label=label)
        return handle

    # --------------------------------------------- detection and recovery

    def _await(self, handle: TaskHandle) -> bool:
        """Wait for the handle's future, watchdog-bounded when armed."""
        watchdog = self._watchdog
        if watchdog is None:
            try:
                handle.future.exception()  # blocks until done
            except CancelledError:
                pass
            return True
        before = watchdog.timeouts
        done = watchdog.await_future(handle.future, handle._token)
        if watchdog.timeouts > before:
            handle._hung = True
        return done

    def _settle(self, handle: TaskHandle):
        """Earn (or give up on) one task's real labor; returns its result.

        The recovery loop: watchdog-bounded waits, broken-pool respawn,
        bounded retry with backoff for transient faults (dead worker,
        lost result, deadline overrun), quarantine for deterministic
        ones (poison, payload bugs).  Failures become structured
        :class:`SegmentFailure` records — the placeholder's virtual
        semantics are identical either way, because the result is
        discarded by contract.
        """
        policy = self.recovery
        attempts = 1
        while True:
            if not self._await(handle):
                # hung past deadline + grace: that worker is gone for good
                self._abandon(handle)
                self._note_fault()
                self._record_failure(handle, "hang", attempts, None,
                                     quarantine=not handle.cancelled)
                return None
            kind: Optional[str] = None
            error: Optional[BaseException] = None
            result = None
            try:
                result = handle.future.result()
            except (CancelledWork, CancelledError) as exc:
                if handle._killed:
                    kind, error = "worker_death", exc
                elif handle._hung:
                    kind, error = "deadline", exc
                else:
                    return None  # benign abort; discarded by contract
            except BrokenExecutor as exc:
                kind, error = "worker_death", exc
                self._respawn_pool()
            except Exception as exc:
                kind, error = _classify_exception(exc), exc
            else:
                if handle._killed:
                    kind = "worker_death"  # labor died with its worker
                elif result == LOST_RESULT:
                    kind = "result_loss"
            if kind is None:
                return result
            handle._killed = False
            handle._hung = False
            self._note_fault()
            transient = kind in TRANSIENT_KINDS
            limit = (1 + policy.max_retries if transient
                     else policy.quarantine_after)
            if handle.cancelled or self.fallen_back or attempts >= limit:
                if transient and attempts >= limit:
                    self.retry_exhausted += 1
                # exhausted labels are quarantined too: retrying them
                # again later can only hurt the pool, and skipping labor
                # is semantically free
                self._record_failure(handle, kind, attempts, error,
                                     quarantine=not handle.cancelled
                                     and attempts >= limit)
                return None
            backoff = policy.backoff_for(attempts)
            if backoff > 0.0:
                time.sleep(backoff)
            self._resubmit(handle, clean=transient)
            attempts += 1

    def _resubmit(self, handle: TaskHandle, *, clean: bool) -> None:
        """Re-earn a task's labor on a fresh worker.

        Transient faults retry the clean payload (the substrate was at
        fault, not the work); deterministic ones re-run what actually
        failed — injected faults refire, genuine payload bugs re-raise —
        so quarantine is reached honestly, never papered over.
        """
        work = handle._base_work
        if not clean and handle._fault is not None:
            work = self._faulted_work(handle._fault, work)
        if self._wall_on:
            work = self._wrap_work(work, handle)
        token = self._new_token()
        handle._token = token
        try:
            handle.future = self._submit_work(
                self._ensure_pool(), work, WorkContext(token))
        except BrokenExecutor:
            self._respawn_pool()
            handle.future = self._submit_work(
                self._ensure_pool(), work, WorkContext(token))
        self.retries += 1

    def _abandon(self, handle: TaskHandle) -> None:
        """Give up on a hung task; declare its worker dead.

        The stuck worker still occupies a pool slot, so the whole pool is
        retired (shut down without waiting — never block the driver on a
        zombie) and a fresh one spins up lazily at the next submission.
        """
        worker = handle.wall_worker
        if not worker:
            watchdog = self._watchdog
            worker = f"abandoned-{watchdog.abandoned if watchdog else 0}"
        self.dead_workers.setdefault(worker, perf_counter())
        self._respawn_pool()

    def _respawn_pool(self) -> None:
        """Retire the current pool; the next submission spins a fresh one."""
        pool = self._pool
        if pool is not None:
            self._pool = None
            self._zombies.append(pool)
            pool.shutdown(wait=False)
        self.respawns += 1

    def _record_failure(self, handle: TaskHandle, kind: str, attempts: int,
                        error: Optional[BaseException], *,
                        quarantine: bool) -> None:
        """Surface one unearned task as a structured SegmentFailure."""
        tb = None
        if error is not None:
            tb = "".join(traceback_module.format_exception(
                type(error), error, error.__traceback__))
        if quarantine and handle.label:
            self._quarantined.add(handle.label)
        failure = SegmentFailure(
            label=handle.label, kind=kind, attempts=attempts,
            error=repr(error) if error is not None else "",
            traceback=tb, quarantined=quarantine and bool(handle.label),
            time=self.scheduler.now if self.scheduler is not None else 0.0,
        )
        self.task_errors.append(failure)
        listener = self.on_segment_failure
        if listener is not None:
            listener(failure)

    def _note_fault(self) -> None:
        """Count one fault event; demote when the FallbackPolicy says so."""
        self.fault_events += 1
        fallback = self.recovery.fallback
        if fallback is None or self.fallen_back:
            return
        abandoned = self._watchdog.abandoned if self._watchdog else 0
        if (self.fault_events >= fallback.max_faults
                or abandoned >= fallback.max_abandoned):
            self.demote(f"fault threshold: {self.fault_events} fault events, "
                        f"{abandoned} abandoned")

    def demote(self, reason: str = "requested") -> None:
        """Demote this backend to virtual passthrough for the rest of the
        run: later submissions skip the pool entirely (graceful
        degradation — committed output is unchanged by construction).
        In-flight tasks still settle normally; drain retires the pool."""
        if self.fallen_back:
            return
        self.fallen_back = True
        self.demotions += 1
        self.fallback_reason = reason
        listener = self.on_fallback
        if listener is not None:
            listener(self, reason)

    def _fire_kill(self, kills: int) -> None:
        """A scheduled WorkerKillSpec: oldest in-flight tasks lose labor."""
        victims = sorted(
            (h for h in self._inflight
             if not h.cancelled and not h._killed
             and not (h.future is not None and h.future.done())),
            key=lambda h: h._seq)
        hit = 0
        for handle in victims[:kills]:
            handle._killed = True
            token = handle._token
            if token is not None:
                token.set()  # reclaim the worker; the gate re-earns labor
            self.sched_kills += 1
            hit += 1
        self._pending_kills += kills - hit

    # ----------------------------------------------------- dual-clock capture

    def _wrap_work(self, work: Work, handle: TaskHandle) -> Work:
        """Stamp the handle with the labor's wall window and worker.

        In-process pools can write the handle directly from the worker;
        the ``finally`` keeps the end stamp even when cancellation raises
        :class:`CancelledWork` out of the payload mid-sleep.
        """
        def walled(ctx: WorkContext):
            handle.wall_worker = threading.current_thread().name
            handle.wall_start = perf_counter()
            try:
                return work(ctx)
            finally:
                handle.wall_end = perf_counter()
        return walled

    def _extract_wall(self, handle: TaskHandle, result) -> None:
        """Recover wall stamps the wrapper could not write directly."""

    def _settle_wall(self, handle: TaskHandle, result, *,
                     gate_block: float, cancelled: bool) -> None:
        """Annotate the segment span and keep one wall record per task."""
        self._extract_wall(handle, result)
        tracer = self.tracer
        if (tracer is not None and handle.span_sid >= 0
                and handle.wall_start is not None):
            tracer.annotate_wall(
                handle.span_sid, start=handle.wall_start,
                end=handle.wall_end,
                worker=handle.wall_worker or "worker")
            self.wall_annotated += 1
        self.wall_records.append({
            "label": handle.label, "sid": handle.span_sid,
            "submit": handle.wall_submit, "start": handle.wall_start,
            "end": handle.wall_end, "worker": handle.wall_worker,
            "gate_block": gate_block, "cancelled": cancelled,
        })

    def _note_task_cancelled(self, handle: TaskHandle) -> None:
        self.tasks_cancelled += 1
        # stays in _inflight until drain() settles its future

    # ------------------------------------------------------------- teardown

    def drain(self) -> None:
        deadline = self.recovery.deadline
        for handle in list(self._inflight):
            future = handle.future
            if handle.cancelled:
                result = None
                if future is not None:
                    try:
                        if deadline is None:
                            result = future.result()
                        else:
                            result = future.result(
                                timeout=deadline + self.recovery.grace)
                    except (CancelledWork, CancelledError):
                        pass  # the benign abort path: discarded by contract
                    except (FuturesTimeout, TimeoutError):
                        # still hung at drain: abandon the worker rather
                        # than wedge shutdown on it
                        self._abandon(handle)
                        self._record_failure(handle, "hang", 1, None,
                                             quarantine=False)
                    except Exception as exc:
                        # a cancelled task's payload failed for real —
                        # surface it structured (exec.task_errors), never
                        # swallow it
                        self._record_failure(
                            handle, _classify_exception(exc), 1, exc,
                            quarantine=False)
                self._inflight.discard(handle)
                if self._wall_on:
                    # Cancelled labor settles here, after its span was
                    # closed by the abort path — annotate_wall works on
                    # closed spans for exactly this reason.
                    self._settle_wall(handle, result, gate_block=0.0,
                                      cancelled=True)
            elif future is not None and future.done():
                pass  # settled; its gate is still queued and will fire
        # At quiescence no more work can arrive: release the workers so a
        # finished system leaks no threads/processes.  A later run(until=)
        # resumption lazily spins a fresh pool up.
        if self.scheduler is not None \
                and self.scheduler.queue.peek_time() is None:
            self.shutdown()

    def shutdown(self) -> None:
        pool = self._pool
        if pool is not None:
            self._pool = None
            pool.shutdown(wait=True)
        zombies, self._zombies = self._zombies, []
        for pool in zombies:
            pool.shutdown(wait=False)  # never block on a retired pool

    def pending(self) -> int:
        return len(self._inflight)

    def counters(self) -> dict:
        labor = 0.0
        block = 0.0
        for rec in self.wall_records:
            if rec["start"] is not None and rec["end"] is not None:
                labor += rec["end"] - rec["start"]
            block += rec["gate_block"]
        watchdog = self._watchdog
        return {
            "exec.workers": self.workers,
            "exec.tasks_submitted": self.tasks_submitted,
            "exec.tasks_completed": self.tasks_completed,
            "exec.tasks_cancelled": self.tasks_cancelled,
            "exec.gate_waits": self.gate_waits,
            "exec.pool_spinups": self.pool_spinups,
            "exec.task_errors": len(self.task_errors),
            "exec.fault.kills_injected": self.kills_injected,
            "exec.fault.hangs_injected": self.hangs_injected,
            "exec.fault.poison_injected": self.poison_injected,
            "exec.fault.results_lost": self.results_lost,
            "exec.fault.sched_kills": self.sched_kills,
            "exec.fault.events": self.fault_events,
            "exec.fault.quarantined": len(self._quarantined),
            "exec.fault.quarantine_skips": self.quarantine_skips,
            "exec.retry.attempts": self.retries,
            "exec.retry.respawns": self.respawns,
            "exec.retry.exhausted": self.retry_exhausted,
            "exec.fallback.demotions": self.demotions,
            "exec.fallback.virtual_segments": self.fallback_virtual,
            "exec.watchdog.timeouts":
                watchdog.timeouts if watchdog is not None else 0,
            "exec.watchdog.abandoned":
                watchdog.abandoned if watchdog is not None else 0,
            "wall.records": len(self.wall_records),
            "wall.annotated": self.wall_annotated,
            "wall.labor_ms": int(labor * 1000),
            "wall.gate_block_ms": int(block * 1000),
        }


class ThreadPoolBackend(_PoolBackend):
    """Speculative segments on real OS threads (latency-bound work)."""

    capabilities = ExecutorCapabilities(
        name="thread",
        real_time=True,
        parallel=True,
        cancel_blocked_work=True,
        requires_picklable=False,
    )

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-exec")

    def _new_token(self):
        return threading.Event()


class ProcessPoolBackend(_PoolBackend):
    """Speculative segments on a process pool (CPU-bound work).

    Work payloads cross a process boundary: they must be picklable and
    cannot see the cancel token, so ``cancel()`` only prevents *unstarted*
    work from running (``Future.cancel``) and guarantees that a started
    task's result is discarded.  Real worker death surfaces here as
    ``BrokenProcessPool`` — the recovery loop retires the broken pool and
    re-earns lost labor on a respawned one.
    """

    capabilities = ExecutorCapabilities(
        name="process",
        real_time=True,
        parallel=True,
        cancel_blocked_work=False,
        requires_picklable=True,
    )

    def _make_pool(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.workers)

    def _new_token(self):
        return None  # tokens cannot cross the process boundary

    def _wrap_work(self, work: Work, handle: TaskHandle) -> Work:
        # Closures don't pickle; ship the module-level wrapper instead.
        return partial(_walled_work, work)

    def _extract_wall(self, handle: TaskHandle, result) -> None:
        if type(result) is tuple and len(result) == 3:
            handle.wall_start, handle.wall_end, handle.wall_worker = result
