"""Real-hardware backends: OS-thread and process pools under the DES.

Both backends keep the virtual-time substrate authoritative (see
:mod:`repro.exec.api` for the placeholder-event design) and differ only
in where the real labor runs and how cancellation reaches it:

* :class:`ThreadPoolBackend` — ``concurrent.futures`` threads.  Right for
  latency-bound work (real ``time.sleep``, socket I/O) where the GIL is
  released while blocked.  Cancellation is prompt: the cancel token wakes
  a payload blocked in :meth:`~repro.exec.api.WorkContext.sleep`.
* :class:`ProcessPoolBackend` — a process pool for CPU-bound payloads.
  Payloads must be picklable (module-level callables or ``partial`` of
  them — lint rule SA501 flags closures); the cancel token cannot cross
  the process boundary, so cancellation of *running* work is best-effort
  and only the result-discard guarantee holds.

``realize_scale`` makes the pools earn their keep on unmodified
workloads: every live :class:`~repro.csp.effects.Compute` duration ``d``
is realized as a real sleep of ``d * realize_scale`` seconds on a worker.
The chaos-parity gate in ``repro.bench.parallel`` uses this so all 24
fault schedules genuinely exercise submission, overlap, and
abort-triggered cancellation without touching the workloads.
"""

from __future__ import annotations

import threading
from concurrent.futures import CancelledError, Executor, ProcessPoolExecutor, \
    ThreadPoolExecutor
from functools import partial
from typing import Callable, Optional

from repro.exec.api import (
    CancelledWork,
    ExecutorBackend,
    ExecutorCapabilities,
    TaskHandle,
    Work,
    WorkContext,
)


def _timed_work(seconds: float, ctx: WorkContext) -> None:
    """Realized sleep standing in for ``Compute(duration)`` labor.

    Module-level (not a closure) so the process backend can pickle the
    ``partial(_timed_work, seconds)`` payload.
    """
    ctx.sleep(seconds)


class _PoolBackend(ExecutorBackend):
    """Shared machinery: placeholder gating, cancel tokens, drain."""

    def __init__(self, workers: int = 8, *,
                 realize_scale: float = 0.0) -> None:
        super().__init__()
        if workers < 1:
            raise ValueError(f"workers must be >= 1: {workers!r}")
        self.workers = workers
        #: seconds of real sleep per unit of live Compute virtual time
        #: (0.0 = only explicit ``Compute(work=...)`` payloads run for real)
        self.realize_scale = realize_scale
        self._pool: Optional[Executor] = None
        #: submitted-but-unsettled handles; the gate removes fired tasks,
        #: :meth:`drain` settles cancelled ones
        self._inflight: set = set()
        self.tasks_submitted = 0
        self.tasks_completed = 0
        self.tasks_cancelled = 0
        #: placeholders popped before their real work finished — i.e. how
        #: often real time was on the driver's critical path
        self.gate_waits = 0
        self.pool_spinups = 0

    # ----------------------------------------------- subclass obligations

    def _make_pool(self) -> Executor:
        raise NotImplementedError

    def _new_token(self):
        """Cancel token (``set()``/``is_set()``/``wait()``) or ``None``."""
        raise NotImplementedError

    def _submit_work(self, pool: Executor, work: Work, ctx: WorkContext):
        return pool.submit(work, ctx)

    # ----------------------------------------------------------- submission

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            self._pool = self._make_pool()
            self.pool_spinups += 1
        return self._pool

    def submit_segment(self, delay: float, resume: Callable[[], None], *,
                       label: str = "", work: Optional[Work] = None):
        if work is None:
            if self.realize_scale > 0.0 and delay > 0.0:
                work = partial(_timed_work, delay * self.realize_scale)
            else:
                # nothing real to do: identical to the virtual backend
                return self.scheduler.after(delay, resume, label=label)
        handle = TaskHandle(label=label)
        token = self._new_token()
        handle._token = token
        handle._backend = self
        handle.future = self._submit_work(
            self._ensure_pool(), work, WorkContext(token))
        self.tasks_submitted += 1
        self._inflight.add(handle)

        def gate() -> None:
            # Fires at the placeholder's virtual time, on the driver
            # thread, in exactly the event order the oracle would use.
            future = handle.future
            if not future.done():
                self.gate_waits += 1
            try:
                future.result()
            except (CancelledWork, CancelledError):
                pass  # result discarded; the virtual duration still stands
            self.tasks_completed += 1
            self._inflight.discard(handle)
            handle._backend = None
            resume()

        # The placeholder allocates the same (time, priority, seq) slot the
        # virtual backend would — this is the whole equivalence argument.
        handle._event = self.scheduler.after(delay, gate, label=label)
        return handle

    def _note_task_cancelled(self, handle: TaskHandle) -> None:
        self.tasks_cancelled += 1
        # stays in _inflight until drain() settles its future

    # ------------------------------------------------------------- teardown

    def drain(self) -> None:
        for handle in list(self._inflight):
            future = handle.future
            if handle.cancelled:
                if future is not None:
                    try:
                        future.result()
                    except Exception:
                        pass  # discarded by contract
                self._inflight.discard(handle)
            elif future is not None and future.done():
                pass  # settled; its gate is still queued and will fire
        # At quiescence no more work can arrive: release the workers so a
        # finished system leaks no threads/processes.  A later run(until=)
        # resumption lazily spins a fresh pool up.
        if self.scheduler is not None \
                and self.scheduler.queue.peek_time() is None:
            self.shutdown()

    def shutdown(self) -> None:
        pool = self._pool
        if pool is not None:
            self._pool = None
            pool.shutdown(wait=True)

    def pending(self) -> int:
        return len(self._inflight)

    def counters(self) -> dict:
        return {
            "exec.workers": self.workers,
            "exec.tasks_submitted": self.tasks_submitted,
            "exec.tasks_completed": self.tasks_completed,
            "exec.tasks_cancelled": self.tasks_cancelled,
            "exec.gate_waits": self.gate_waits,
            "exec.pool_spinups": self.pool_spinups,
        }


class ThreadPoolBackend(_PoolBackend):
    """Speculative segments on real OS threads (latency-bound work)."""

    capabilities = ExecutorCapabilities(
        name="thread",
        real_time=True,
        parallel=True,
        cancel_blocked_work=True,
        requires_picklable=False,
    )

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-exec")

    def _new_token(self):
        return threading.Event()


class ProcessPoolBackend(_PoolBackend):
    """Speculative segments on a process pool (CPU-bound work).

    Work payloads cross a process boundary: they must be picklable and
    cannot see the cancel token, so ``cancel()`` only prevents *unstarted*
    work from running (``Future.cancel``) and guarantees that a started
    task's result is discarded.
    """

    capabilities = ExecutorCapabilities(
        name="process",
        real_time=True,
        parallel=True,
        cancel_blocked_work=False,
        requires_picklable=True,
    )

    def _make_pool(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.workers)

    def _new_token(self):
        return None  # tokens cannot cross the process boundary
