"""The executor-backend protocol: one substrate API, three execution modes.

The optimistic runtime never touches the simulator directly any more —
:class:`~repro.core.system.OptimisticSystem` owns an
:class:`ExecutorBackend` and every scheduling decision of the protocol
(fork timeouts, compute completions, continuations, orphan scans) goes
through the backend facade.  Three implementations exist:

* :class:`~repro.exec.virtual.VirtualTimeBackend` — wraps the existing
  single-threaded DES.  The default, and the *sequential-equivalence
  oracle*: every other backend must produce byte-equal committed outputs.
* :class:`~repro.exec.pool.ThreadPoolBackend` — OS threads for
  latency-bound segments doing real ``time.sleep``/socket I/O.
* :class:`~repro.exec.pool.ProcessPoolBackend` — a process pool for
  CPU-bound segments; work payloads must be picklable (lint rule SA501).

The equivalence trick — placeholder events
------------------------------------------

Real backends do **not** replace the DES; they run *underneath* it.
:meth:`ExecutorBackend.submit_segment` always allocates the exact same
virtual event (same ``(time, priority, seq)``) the virtual backend would,
so the deterministic event order — and therefore every protocol decision,
guard propagation, and committed output — is identical by construction.
On a real backend the call *additionally* ships the segment's real labor
(a :class:`Work` payload, or a realized sleep for plain
:class:`~repro.csp.effects.Compute` durations) to a worker pool.  When
the DES pops the placeholder and the future has not finished, the driver
blocks on it: real time passes, virtual order is untouched.  Wall-clock
speedup comes from every *speculative* segment's work overlapping on the
pool while the driver is still upstream — the paper's optimism, realized
on hardware.

Cancellation is cooperative: aborting a guess cancels the placeholder
event *and* sets the task's cancel token, which wakes a worker blocked in
:meth:`WorkContext.sleep` immediately (it raises :class:`CancelledWork`
inside the payload).  A cancelled task's result is always discarded, so
its effects can never reach a journal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import PRIORITY_NORMAL
from repro.sim.scheduler import Scheduler, Timer


class CancelledWork(Exception):
    """Raised inside a work payload when its task's cancel token is set."""


@dataclass(frozen=True)
class ExecutorCapabilities:
    """What a backend can and cannot do; reflection for callers and tests.

    Attributes
    ----------
    name:
        Stable identifier (``"virtual"``, ``"thread"``, ``"process"``).
    real_time:
        Work payloads and realized sleeps consume wall-clock time.
    parallel:
        Distinct segments' work can make progress simultaneously.
    cancel_blocked_work:
        ``cancel()`` interrupts a payload blocked in
        :meth:`WorkContext.sleep` promptly.  Process pools cannot reach
        into a worker, so cancellation there is best-effort (the result
        is still discarded — only the labor is wasted).
    requires_picklable:
        Work payloads cross a process boundary and must pickle.
    """

    name: str
    real_time: bool
    parallel: bool
    cancel_blocked_work: bool
    requires_picklable: bool


class WorkContext:
    """Handed to every work payload; the only sanctioned blocking surface.

    Payloads must route blocking waits through :meth:`sleep` and call
    :meth:`check` inside long computations so cooperative cancellation can
    interrupt them.  On the virtual backend no payload ever runs, so this
    class only materializes on real backends.
    """

    __slots__ = ("_token",)

    def __init__(self, token: Any = None) -> None:
        self._token = token

    @property
    def cancelled(self) -> bool:
        token = self._token
        return token is not None and token.is_set()

    def check(self) -> None:
        """Raise :class:`CancelledWork` if this task has been cancelled."""
        if self.cancelled:
            raise CancelledWork("task cancelled")

    def sleep(self, seconds: float) -> None:
        """Sleep for real ``seconds``, waking immediately on cancellation."""
        token = self._token
        if token is None:
            import time

            time.sleep(seconds)
            return
        if token.wait(seconds):
            raise CancelledWork("task cancelled during sleep")


#: A work payload: real labor whose *result is discarded*.  The effect-free
#: contract is what keeps cross-backend equivalence trivial — payloads may
#: burn CPU, sleep, or talk to the outside world idempotently, but every
#: externally visible protocol action still goes through effects.
Work = Callable[[WorkContext], Any]


class TaskHandle:
    """Cancellable handle for one submitted segment task.

    Duck-compatible with :class:`~repro.sim.events.Event` (``cancel()``,
    ``cancelled``) so runtime code can hold either interchangeably —
    the virtual backend returns raw events and pays no overhead.
    """

    __slots__ = ("label", "cancelled", "future", "_event", "_token",
                 "_backend", "span_sid", "wall_submit", "wall_start",
                 "wall_end", "wall_worker", "_seq", "_base_work",
                 "_fault", "_killed", "_hung")

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.cancelled = False
        self.future = None
        self._event = None        # the virtual placeholder event
        self._token = None        # cooperative cancel token
        self._backend = None
        # Fault-plane bookkeeping (see repro.exec.faults / .watchdog).
        self._seq = 0             # submission order, for deterministic kills
        self._base_work = None    # clean payload, resubmitted on retry
        self._fault = None        # injected fault kind, if any
        self._killed = False      # scheduled kill took this task's worker
        self._hung = False        # watchdog deadline expired on this task
        # Dual-clock observations (populated only while a tracer records).
        self.span_sid = -1        # segment span the wall stamps belong to
        self.wall_submit = None   # perf_counter() at submission
        self.wall_start = None    # perf_counter() when a worker picked it up
        self.wall_end = None      # perf_counter() when the labor finished
        self.wall_worker = None   # pool worker that performed the labor

    @property
    def done(self) -> bool:
        future = self.future
        return future is not None and future.done()

    def cancel(self) -> None:
        """Backend-mediated abort: placeholder, token, and future at once."""
        if self.cancelled:
            return
        self.cancelled = True
        event = self._event
        if event is not None:
            self._event = None
            event.cancel()
        token = self._token
        if token is not None:
            token.set()
        future = self.future
        if future is not None:
            future.cancel()  # only wins if not started; result is discarded
        backend = self._backend
        if backend is not None:
            self._backend = None
            backend._note_task_cancelled(self)


class ExecutorBackend:
    """Base class and facade contract for all executor backends.

    A backend is bound to exactly one system: :meth:`bind` creates and
    owns the :class:`~repro.sim.scheduler.Scheduler` so nothing else can
    construct a substrate behind the backend's back.  The scheduling
    facade (:attr:`now`, :meth:`at`, :meth:`after`, :meth:`post`,
    :meth:`timer`) is what the runtime and threads call; the raw
    ``scheduler`` attribute remains available for the network/transport
    layers, which are virtual-time-only by design.
    """

    capabilities: ExecutorCapabilities = ExecutorCapabilities(
        name="abstract", real_time=False, parallel=False,
        cancel_blocked_work=False, requires_picklable=False,
    )

    def __init__(self) -> None:
        self.scheduler: Optional[Scheduler] = None
        self.tracer = None
        #: structured :class:`~repro.exec.watchdog.SegmentFailure` records
        #: for tasks whose real labor could not be earned (always empty on
        #: virtual backends — no real labor, nothing to lose)
        self.task_errors: list = []
        #: set once a FallbackPolicy demoted this backend to virtual
        #: passthrough mid-run (see docs/BACKENDS.md, "Fault tolerance")
        self.fallen_back = False
        #: optional system hook: called with each SegmentFailure as it is
        #: settled, so the runtime can log the abort-and-fallback
        self.on_segment_failure: Optional[Callable[[Any], None]] = None
        #: optional system hook: called once on fallback demotion with
        #: ``(backend, reason)``
        self.on_fallback: Optional[Callable[[Any, str], None]] = None

    # ------------------------------------------------------------- binding

    def bind(self, *, max_steps: int, tracer=None) -> Scheduler:
        """Create (and own) the virtual-time substrate for one system."""
        if self.scheduler is not None:
            raise SimulationError(
                f"{type(self).__name__} is already bound to a system; "
                "backends are single-use — construct one per system"
            )
        self.tracer = tracer
        self.scheduler = Scheduler(max_steps=max_steps, tracer=tracer)
        return self.scheduler

    # ------------------------------------------------------ schedule facade

    @property
    def now(self) -> float:
        return self.scheduler.now

    def at(self, time: float, action: Callable[[], None], *,
           priority: int = PRIORITY_NORMAL, label: str = ""):
        return self.scheduler.at(time, action, priority=priority, label=label)

    def after(self, delay: float, action: Callable[[], None], *,
              priority: int = PRIORITY_NORMAL, label: str = ""):
        return self.scheduler.after(delay, action, priority=priority,
                                    label=label)

    def post(self, time: float, action: Callable[[], None],
             priority: int = PRIORITY_NORMAL, label: str = "") -> None:
        self.scheduler.post(time, action, priority, label)

    def timer(self, delay: float, action: Callable[[], None], *,
              label: str = "timer") -> Timer:
        return self.scheduler.timer(delay, action, label=label)

    # ------------------------------------------------------------ protocol

    def submit_segment(self, delay: float, resume: Callable[[], None], *,
                       label: str = "", work: Optional[Work] = None,
                       span_sid: int = -1):
        """Schedule a segment's compute completion ``delay`` units from now.

        Returns a cancellable handle (an :class:`~repro.sim.events.Event`
        or a :class:`TaskHandle`).  ``resume`` runs on the driver thread at
        the placeholder's virtual time — after the real work, if any,
        has finished.  ``work`` is ignored by virtual backends (payloads
        are effect-free, so skipping them is semantics-preserving).
        ``span_sid`` names the open segment span so real backends can
        annotate it with wall-clock stamps; ``-1`` (or a disabled tracer)
        turns the dual-clock capture off entirely.
        """
        raise NotImplementedError

    def wall_now(self) -> Optional[float]:
        """Current wall-clock reading, or ``None`` on virtual backends.

        Lets the runtime stamp driver-side work (guess fork→resolution
        windows) on the same clock the pool workers use, without the
        virtual backend ever touching a real clock.
        """
        return None

    def cancel(self, handle: Any) -> None:
        """Cancel a previously submitted task (no-op when already done)."""
        handle.cancel()

    def run(self, until: Optional[float] = None) -> float:
        """Drive the system to quiescence (or past ``until``)."""
        return self.scheduler.run(until=until)

    def drain(self) -> None:
        """Settle every outstanding real task; idempotent.

        After ``drain()`` returns no worker is executing or holding a
        payload, and — when the virtual queue is empty — the pool itself
        has been shut down, so a finished run leaks neither tasks nor
        threads.
        """

    def shutdown(self) -> None:
        """Tear down pools unconditionally (drain first for a clean stop)."""

    def pending(self) -> int:
        """Outstanding (submitted, unsettled) real tasks; 0 when virtual."""
        return 0

    def counters(self) -> dict:
        """Pull-based ``exec.*`` health counters, merged into run stats."""
        return {}

    # ----------------------------------------------------------- internals

    def _note_task_cancelled(self, handle: TaskHandle) -> None:
        """Hook for pool backends' cancellation bookkeeping."""
