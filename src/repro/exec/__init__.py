"""repro.exec — pluggable segment-executor backends.

The runtime/substrate split: :class:`ExecutorBackend` is the protocol
(`submit_segment`, `cancel`, `drain`, capability flags), with three
implementations — the single-threaded DES oracle
(:class:`VirtualTimeBackend`, the default), OS threads
(:class:`ThreadPoolBackend`) and a process pool
(:class:`ProcessPoolBackend`).  See ``docs/BACKENDS.md`` for the
contract and the cross-backend equivalence guarantee.

The substrate is fault-tolerant: a seeded :class:`ExecFaultPlan` injects
worker kills, hangs, poisoned payloads and lost results through the pool
backends, and a :class:`RecoveryPolicy` (watchdog deadlines, bounded
retry, quarantine, optional :class:`FallbackPolicy` demotion to virtual
passthrough) recovers from them — injected or real — without ever
changing committed output.  Unearned labor surfaces as structured
:class:`SegmentFailure` records, never a crash.
"""

from repro.exec.api import (
    CancelledWork,
    ExecutorBackend,
    ExecutorCapabilities,
    TaskHandle,
    Work,
    WorkContext,
)
from repro.exec.faults import (
    ExecFaultError,
    ExecFaultInjector,
    ExecFaultPlan,
    PoisonedPayload,
    TaskFaults,
    WorkerKilled,
    WorkerKillSpec,
)
from repro.exec.pool import ProcessPoolBackend, ThreadPoolBackend
from repro.exec.virtual import VirtualTimeBackend
from repro.exec.watchdog import (
    FallbackPolicy,
    RecoveryPolicy,
    SegmentFailure,
    Watchdog,
)

__all__ = [
    "CancelledWork",
    "ExecFaultError",
    "ExecFaultInjector",
    "ExecFaultPlan",
    "ExecutorBackend",
    "ExecutorCapabilities",
    "FallbackPolicy",
    "PoisonedPayload",
    "ProcessPoolBackend",
    "RecoveryPolicy",
    "SegmentFailure",
    "TaskFaults",
    "TaskHandle",
    "ThreadPoolBackend",
    "VirtualTimeBackend",
    "Watchdog",
    "Work",
    "WorkContext",
    "WorkerKilled",
    "WorkerKillSpec",
]
