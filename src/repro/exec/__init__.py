"""repro.exec — pluggable segment-executor backends.

The runtime/substrate split: :class:`ExecutorBackend` is the protocol
(`submit_segment`, `cancel`, `drain`, capability flags), with three
implementations — the single-threaded DES oracle
(:class:`VirtualTimeBackend`, the default), OS threads
(:class:`ThreadPoolBackend`) and a process pool
(:class:`ProcessPoolBackend`).  See ``docs/BACKENDS.md`` for the
contract and the cross-backend equivalence guarantee.
"""

from repro.exec.api import (
    CancelledWork,
    ExecutorBackend,
    ExecutorCapabilities,
    TaskHandle,
    Work,
    WorkContext,
)
from repro.exec.pool import ProcessPoolBackend, ThreadPoolBackend
from repro.exec.virtual import VirtualTimeBackend

__all__ = [
    "CancelledWork",
    "ExecutorBackend",
    "ExecutorCapabilities",
    "ProcessPoolBackend",
    "TaskHandle",
    "ThreadPoolBackend",
    "VirtualTimeBackend",
    "Work",
    "WorkContext",
]
