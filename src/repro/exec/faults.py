"""Exec fault plane: seeded substrate faults injected through the pools.

The network fault plane (:mod:`repro.sim.faults`) attacks the wire; this
module attacks the *execution substrate* — the worker pools that run
speculative segment labor under the DES oracle.  The declarative specs
(:class:`~repro.sim.faults.TaskFaults`,
:class:`~repro.sim.faults.WorkerKillSpec`,
:class:`~repro.sim.faults.ExecFaultPlan`) live next to their network
siblings and are re-exported here; this module adds the machinery that
*manifests* them:

* :class:`ExecFaultInjector` — one seeded draw per submitted task (from
  the plan's :class:`~repro.sim.rng.RngRegistry`), deciding whether that
  task's worker dies, hangs, is poisoned, or loses its result.  Draws
  happen on the driver in submission order, which is virtual-event order,
  so a fault schedule is a pure function of the seed.
* Picklable payload wrappers (module-level, ``partial``-friendly) that
  realize each fault class inside a worker — including across the process
  boundary of :class:`~repro.exec.pool.ProcessPoolBackend`.

Because payloads are effect-free and the virtual placeholder events are
untouched, every injected fault is *semantically invisible*: committed
output stays byte-equal to the fault-free run, and the only observable
consequences are wall-clock cost and the recovery telemetry
(``exec.fault.*`` / ``exec.retry.*`` / ``exec.fallback.*`` counters,
:class:`~repro.exec.watchdog.SegmentFailure` records).
"""

from __future__ import annotations

from typing import Optional

from repro.exec.api import Work, WorkContext
from repro.sim.faults import ExecFaultPlan, TaskFaults, WorkerKillSpec
from repro.sim.rng import RngRegistry


class ExecFaultError(Exception):
    """Base class for injected execution-substrate faults."""


class WorkerKilled(ExecFaultError):
    """The worker running a task died before delivering its labor."""


class PoisonedPayload(ExecFaultError):
    """A payload that fails deterministically on every attempt."""


#: Sentinel a payload returns when its result was "lost in transit".
#: A plain string so it pickles and compares across a process boundary.
LOST_RESULT = "__repro_exec_result_lost__"

#: Fault kinds the injector can draw, in draw order.
INJECTABLE = ("kill", "hang", "poison", "lost")


# ------------------------------------------------------- payload wrappers
#
# Module-level (not closures) so ProcessPoolBackend can pickle
# ``partial(wrapper, ..., work)`` payloads.

def killed_work(work: Work, ctx: WorkContext) -> None:
    """The worker dies before the labor completes; nothing is delivered."""
    raise WorkerKilled("injected worker death")


def hung_work(extra: float, work: Work, ctx: WorkContext):
    """A stuck payload: blocks on the raw clock, ignoring its token.

    This is the one fault class cooperative cancellation cannot reach —
    only a watchdog deadline detects it.  The stall is bounded (``extra``
    real seconds) so an undetected hang degrades a run instead of
    wedging the interpreter.
    """
    import time

    time.sleep(extra)
    return work(ctx)


def poisoned_work(work: Work, ctx: WorkContext) -> None:
    """A payload that raises deterministically on every attempt."""
    raise PoisonedPayload("injected poison payload")


def lost_work(work: Work, ctx: WorkContext) -> str:
    """The labor completes but its result is lost in transit."""
    work(ctx)
    return LOST_RESULT


class ExecFaultInjector:
    """Driver-side fault decisions for one pool backend.

    Stateless beyond its rng streams: the backend asks :meth:`draw` once
    per submitted task and applies the verdict itself (wrapping the
    payload, marking handles).  At most one fault per task; classes are
    checked in :data:`INJECTABLE` order, mirroring
    :class:`~repro.sim.faults.FaultyNetwork`'s per-message draws.
    """

    def __init__(self, plan: ExecFaultPlan) -> None:
        plan.validate()
        self.plan = plan
        self.rng = RngRegistry(plan.seed)

    def _draw(self) -> float:
        return float(self.rng.stream("exec.tasks").uniform(0.0, 1.0))

    def draw(self, now: float) -> Optional[str]:
        """Fault for the task submitted at virtual ``now`` (or ``None``)."""
        tasks = self.plan.tasks
        if not tasks.active or not self.plan.in_window(now):
            return None
        if tasks.kill_p and self._draw() < tasks.kill_p:
            return "kill"
        if tasks.hang_p and self._draw() < tasks.hang_p:
            return "hang"
        if tasks.poison_p and self._draw() < tasks.poison_p:
            return "poison"
        if tasks.lose_result_p and self._draw() < tasks.lose_result_p:
            return "lost"
        return None


__all__ = [
    "ExecFaultError", "ExecFaultInjector", "ExecFaultPlan", "INJECTABLE",
    "LOST_RESULT", "PoisonedPayload", "TaskFaults", "WorkerKilled",
    "WorkerKillSpec", "hung_work", "killed_work", "lost_work",
    "poisoned_work",
]
