"""Detection and recovery policy for pool-backed segment labor.

The pool backends (:mod:`repro.exec.pool`) ship *effect-free* labor to
real workers underneath the DES oracle: the virtual placeholder event is
authoritative and a payload's result is always discarded.  That contract
is what makes recovery safe — retrying, skipping, or abandoning labor can
never change committed output, only cost wall-clock time.  This module
holds the pieces the backends use to survive a misbehaving substrate:

* :class:`SegmentFailure` — the structured record of one task whose labor
  could not be earned (poisoned payload, dead worker, hang past deadline,
  lost result).  Surfaced through ``backend.task_errors`` and the run's
  protocol log as an *abort-and-fallback*, never a crash.
* :class:`RecoveryPolicy` — the knobs: per-segment watchdog deadline on a
  monotonic clock, bounded retry with backoff for transient faults,
  quarantine threshold for deterministic ones, and an optional
  :class:`FallbackPolicy`.
* :class:`FallbackPolicy` — graceful degradation: when a pool looks sick
  (too many faults, or any abandoned hung worker), the backend demotes
  itself to virtual passthrough mid-run — later submissions skip the pool
  entirely, which is byte-equal to ``VirtualTimeBackend`` by the
  placeholder-event construction.
* :class:`Watchdog` — bounded waits on futures against a monotonic
  (``perf_counter``) deadline, with a cooperative-cancellation grace
  period before a hung task is abandoned.

Everything is **off by default**: a plain ``ThreadPoolBackend()`` has no
deadline, no fallback, and behaves exactly as before — only genuinely
broken pools (``BrokenProcessPool``) trigger the bounded-retry path.
"""

from __future__ import annotations

from concurrent.futures import CancelledError, Future
from concurrent.futures import wait as _futures_wait
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import SimulationError

#: Failure kinds a :class:`SegmentFailure` can carry.
FAILURE_KINDS = ("poison", "worker_death", "hang", "deadline",
                 "result_loss", "error")

#: Kinds whose retry uses a *fresh* payload on a fresh worker and is
#: expected to succeed (the fault was in the substrate, not the payload).
TRANSIENT_KINDS = frozenset({"worker_death", "result_loss", "deadline"})


@dataclass
class SegmentFailure:
    """One segment task whose real labor could not be earned.

    Purely informational by construction: the virtual placeholder event
    still fired and the (discarded) result was never needed, so a failure
    here costs wall-clock time and telemetry honesty, never correctness.
    """

    label: str                    #: task label ("client.t3.compute")
    kind: str                     #: one of :data:`FAILURE_KINDS`
    attempts: int                 #: submissions tried, including the first
    error: str = ""               #: repr of the final exception, if any
    traceback: Optional[str] = None   #: formatted traceback of that exception
    quarantined: bool = False     #: label quarantined after this failure
    time: float = 0.0             #: virtual time the failure was settled

    @property
    def process(self) -> str:
        """Owning process, recovered from the task label convention."""
        head = self.label.split(".", 1)[0]
        return head or "exec"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label, "kind": self.kind,
            "attempts": self.attempts, "error": self.error,
            "quarantined": self.quarantined, "time": self.time,
        }


@dataclass
class FallbackPolicy:
    """When to demote a sick pool backend to virtual passthrough.

    Demotion is graceful degradation, not failure: in-flight tasks settle
    normally, later submissions skip the pool (pure placeholder events),
    and committed output stays byte-equal to ``VirtualTimeBackend`` — the
    run just stops earning wall-clock overlap.
    """

    #: Demote once this many fault events (injected or detected) occurred.
    max_faults: int = 8
    #: Demote once this many hung tasks were abandoned past their grace
    #: period (an abandoned worker is gone for good — default: any).
    max_abandoned: int = 1

    def validate(self) -> None:
        if self.max_faults < 1 or self.max_abandoned < 1:
            raise SimulationError(
                "FallbackPolicy thresholds must be >= 1 "
                f"(max_faults={self.max_faults!r}, "
                f"max_abandoned={self.max_abandoned!r})"
            )


@dataclass
class RecoveryPolicy:
    """Detection/recovery knobs for a pool backend; all off by default.

    ``deadline`` arms the watchdog: a gate wait on an unfinished future is
    bounded to that many *real* seconds on the monotonic clock; past it
    the task's cancel token is set and, after ``grace`` more seconds, a
    still-unfinished task is abandoned (its worker declared dead, the pool
    retired and respawned lazily).  ``None`` — the default — waits
    forever, exactly the pre-recovery behavior.
    """

    #: Real seconds a gate may block on one unfinished future (None = ∞).
    deadline: Optional[float] = None
    #: Real seconds to wait after setting the cancel token before a hung
    #: task is abandoned.
    grace: float = 0.05
    #: Bounded resubmissions for transient faults (dead worker, lost
    #: result, deadline overrun) beyond the first attempt.
    max_retries: int = 2
    #: Real seconds slept before the first retry; 0.0 retries immediately.
    retry_backoff: float = 0.0
    #: Multiplier on the backoff for each further retry.
    backoff_factor: float = 2.0
    #: Deterministic-failure attempts (poison / payload bug) before the
    #: task's label is quarantined: later submissions skip real labor.
    quarantine_after: int = 2
    #: Optional graceful-degradation thresholds (None = never demote).
    fallback: Optional[FallbackPolicy] = None

    def validate(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise SimulationError("RecoveryPolicy.deadline must be > 0")
        if self.grace < 0 or self.retry_backoff < 0:
            raise SimulationError(
                "RecoveryPolicy.grace and retry_backoff must be >= 0")
        if self.max_retries < 0 or self.quarantine_after < 1:
            raise SimulationError(
                "RecoveryPolicy needs max_retries >= 0 and "
                "quarantine_after >= 1")
        if self.backoff_factor < 1.0:
            raise SimulationError(
                "RecoveryPolicy.backoff_factor must be >= 1.0")
        if self.fallback is not None:
            self.fallback.validate()

    def backoff_for(self, attempt: int) -> float:
        """Real seconds to sleep before retry number ``attempt`` (1-based)."""
        if self.retry_backoff <= 0.0:
            return 0.0
        return self.retry_backoff * self.backoff_factor ** (attempt - 1)


class Watchdog:
    """Bounded waits on futures against a monotonic deadline.

    Uses :func:`concurrent.futures.wait` timeouts over ``perf_counter``
    semantics (monotonic, immune to wall-clock steps).  With no deadline
    the wait is unbounded and the watchdog is pure passthrough.
    """

    __slots__ = ("deadline", "grace", "timeouts", "abandoned")

    def __init__(self, deadline: Optional[float], grace: float) -> None:
        self.deadline = deadline
        self.grace = grace
        self.timeouts = 0    #: gate waits that exceeded the deadline
        self.abandoned = 0   #: hung tasks given up past the grace period

    def await_future(self, future: Future, token: Any = None) -> bool:
        """Wait for ``future``; return False if it must be abandoned.

        On deadline expiry the cancel token (if any) is set so a
        cooperative payload wakes and the worker is reclaimed; only a
        payload that ignores the token through the grace period too is
        abandoned.
        """
        if self.deadline is None:
            try:
                future.exception()  # blocks until done; does not raise it
            except CancelledError:
                pass
            return True
        _futures_wait([future], timeout=self.deadline)
        if future.done():
            return True
        self.timeouts += 1
        if token is not None:
            token.set()
        _futures_wait([future], timeout=self.grace)
        if future.done():
            return True
        self.abandoned += 1
        return False


__all__ = [
    "FAILURE_KINDS", "TRANSIENT_KINDS", "SegmentFailure",
    "FallbackPolicy", "RecoveryPolicy", "Watchdog",
]
