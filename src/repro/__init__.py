"""repro — Optimistic Parallelization of Communicating Sequential Processes.

A complete reproduction of Bacon & Strom (PPOPP 1991).  The public API
re-exported here is the stable surface a downstream user needs:

* build programs (:class:`Program`, :class:`Segment`, effects,
  :func:`server_program`, :func:`make_call_chain`),
* choose what to parallelize (:class:`ParallelizationPlan`,
  :class:`ForkSpec`, :func:`stream_plan`),
* run them (:class:`OptimisticSystem` vs :class:`SequentialSystem`) over a
  latency model, on a pluggable executor backend
  (:class:`ExecutorBackend`: :class:`VirtualTimeBackend` by default, or
  :class:`ThreadPoolBackend` / :class:`ProcessPoolBackend` for real
  OS-level parallelism),
* check Theorem 1 (:func:`assert_equivalent`) or draw the execution
  (:func:`render_timeline`), and
* observe a run (:class:`RecordingTracer`, :class:`Span`,
  :class:`MetricsRegistry`, the trace exporters and
  :func:`speculation_report`) — the same span schema across every
  execution mode — including its *dual-clock* extensions: wall-clock
  pool telemetry (:func:`pool_report`) and access-set conflict heatmaps
  (:class:`AccessTracker`, :func:`conflicts`).
"""

from repro.core import (
    OptimisticConfig,
    OptimisticResult,
    OptimisticSystem,
    make_call_chain,
    stream_plan,
)
from repro.core.analysis import speculation_report, summarize
from repro.obs import (
    AccessTracker,
    ConflictMatrix,
    CriticalPath,
    MetricsRegistry,
    NullTracer,
    PoolReport,
    ProvenanceGraph,
    RecordingTracer,
    RunResult,
    Span,
    Tracer,
    WastedWork,
    as_spans,
    build_provenance,
    chrome_trace_json,
    conflicts,
    critical_path,
    pool_report,
    prometheus_text,
    spans_to_jsonl,
    wasted_work,
    write_chrome_trace,
    write_jsonl_trace,
)
from repro.core.config import (
    CheckpointPolicy,
    ControlPlane,
    DeliveryHeuristic,
)
from repro.exec import (
    ExecFaultPlan,
    ExecutorBackend,
    ExecutorCapabilities,
    FallbackPolicy,
    ProcessPoolBackend,
    RecoveryPolicy,
    SegmentFailure,
    TaskFaults,
    ThreadPoolBackend,
    VirtualTimeBackend,
    WorkerKillSpec,
)
from repro.csp import (
    Call,
    Compute,
    Emit,
    ForkSpec,
    GetTime,
    ParallelizationPlan,
    Program,
    Receive,
    Reply,
    Segment,
    Send,
    SequentialSystem,
    server_program,
)
from repro.sim import (
    FixedLatency,
    JitteredLatency,
    PerLinkLatency,
    SkewedLatency,
)
from repro.trace import assert_equivalent, render_timeline, traces_equivalent

__version__ = "0.1.0"

__all__ = [
    "OptimisticSystem",
    "OptimisticResult",
    "OptimisticConfig",
    "CheckpointPolicy",
    "DeliveryHeuristic",
    "ControlPlane",
    "SequentialSystem",
    "ExecutorBackend",
    "ExecutorCapabilities",
    "VirtualTimeBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "ExecFaultPlan",
    "TaskFaults",
    "WorkerKillSpec",
    "RecoveryPolicy",
    "FallbackPolicy",
    "SegmentFailure",
    "Program",
    "Segment",
    "server_program",
    "make_call_chain",
    "stream_plan",
    "ParallelizationPlan",
    "ForkSpec",
    "Call",
    "Send",
    "Receive",
    "Reply",
    "Compute",
    "Emit",
    "GetTime",
    "FixedLatency",
    "PerLinkLatency",
    "JitteredLatency",
    "SkewedLatency",
    "assert_equivalent",
    "traces_equivalent",
    "render_timeline",
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    "Span",
    "as_spans",
    "MetricsRegistry",
    "RunResult",
    "chrome_trace_json",
    "spans_to_jsonl",
    "write_chrome_trace",
    "write_jsonl_trace",
    "prometheus_text",
    "speculation_report",
    "summarize",
    "ProvenanceGraph",
    "build_provenance",
    "WastedWork",
    "wasted_work",
    "CriticalPath",
    "critical_path",
    "PoolReport",
    "pool_report",
    "AccessTracker",
    "ConflictMatrix",
    "conflicts",
    "__version__",
]
