"""The seed binary-heap event queue, preserved verbatim for A/B benching.

This module is the pre-optimization kernel: a ``heapq``-backed queue of
``@dataclass(order=True)`` events, exactly as the repository shipped it
before the calendar-queue rewrite of :mod:`repro.sim.events`.  It exists
for two reasons:

* ``repro.bench.kernel`` runs every synthetic workload against both
  implementations and gates on the throughput ratio, so the speedup claim
  in ``BENCH_kernel.json`` is measured, not remembered;
* the drop-in-equivalence tests (``tests/test_kernel_queue.py``) replay
  identical push/cancel/pop scripts through both queues and require
  identical pop sequences, which is what licenses swapping the default.

Do not "optimize" this file — its slowness is the baseline.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import PRIORITY_CONTROL, PRIORITY_NORMAL  # noqa: F401

Entry = Tuple[float, int, int, Callable[[], None], object, str]


@dataclass(order=True)
class Event:
    """A scheduled callback (seed representation: ordered dataclass)."""

    time: float
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    #: owning queue while the event is pending in its heap; cleared on pop
    #: so cancelling an already-fired event cannot skew the live count
    _queue: Optional["EventQueue"] = field(compare=False, default=None,
                                           repr=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._live -= 1
            self._queue = None


class EventQueue:
    """Binary-heap event queue with deterministic ordering (seed kernel).

    Cancellation is lazy: cancelled events stay in the heap and are skipped
    on pop, which keeps ``cancel`` O(1).  A live-event count is maintained
    on push/pop/cancel, so ``len(queue)`` is O(1) instead of a heap scan.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(
        self,
        time: float,
        action: Callable[[], None],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at virtual time ``time`` and return the event."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time!r}")
        ev = Event(
            time=float(time),
            priority=priority,
            seq=next(self._counter),
            action=action,
            label=label,
        )
        ev._queue = self
        self._live += 1
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if not ev.cancelled:
                ev._queue = None
                self._live -= 1
                return ev
        return None

    def pop_entry(self) -> Optional[Entry]:
        """Adapter to the tuple-entry protocol of the calendar queue.

        The :class:`~repro.sim.scheduler.Scheduler` main loop consumes
        ``(time, priority, seq, action, event, label)`` tuples; this shim
        lets the seed queue plug into the same loop for A/B runs.
        """
        ev = self.pop()
        if ev is None:
            return None
        return (ev.time, ev.priority, ev.seq, ev.action, ev, ev.label)

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        for ev in self._heap:
            ev._queue = None
        self._heap.clear()
        self._live = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EventQueue(pending={len(self)})"
