"""Seeded fault injection for the network and execution substrates.

The paper's protocol assumes reliable, FIFO, fail-free channels (§4.2.5).
This module is the adversary that revokes the assumption: a
:class:`FaultyNetwork` decorates :class:`~repro.sim.network.Network` and —
driven by a declarative, seeded :class:`FaultPlan` — drops, duplicates,
reorders and delays messages, separately tunable for the data and control
planes, and takes whole processes down for scheduled crash windows.

The *exec* fault plane extends the same discipline to the worker pools
behind the pool backends (:mod:`repro.exec.pool`): an
:class:`ExecFaultPlan` describes per-task worker deaths, hangs, poisoned
payloads and lost results (:class:`TaskFaults`) plus scheduled mid-flight
worker kills (:class:`WorkerKillSpec`).  The plan is pure data — the
injection and the recovery machinery live in :mod:`repro.exec.faults` and
:mod:`repro.exec.watchdog` — and, because payloads are effect-free by
construction, none of these faults can ever change committed output.

Every decision is drawn from a named stream of the plan's own
:class:`~repro.sim.rng.RngRegistry`, so a fault schedule is a pure function
of ``(seed, message sequence)``: the same run under the same plan sees the
same faults, which is what lets the chaos harness pin its results.

External sinks are exempt: an :class:`~repro.csp.external.ExternalSink`
models the outside world *after* output commit (§3.2) — a released emission
is already irrevocable, so the fault model targets the links the protocol
is responsible for, not the terminal in front of the user.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Set, Tuple

from repro.errors import NetworkError
from repro.sim.network import LatencyModel, Network
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.sim.stats import Stats


@dataclass
class LinkFaults:
    """Per-message fault probabilities for one plane (data or control)."""

    #: Probability a message is silently dropped.
    drop_p: float = 0.0
    #: Probability a message is delivered twice (second copy re-jittered).
    dup_p: float = 0.0
    #: Probability a message bypasses the per-link FIFO clamp and gets an
    #: extra uniform(0, reorder_spread) delay — a non-FIFO burst.
    reorder_p: float = 0.0
    #: Spread of the reordering delay.
    reorder_spread: float = 10.0
    #: Probability of a latency spike of ``spike_delay``.
    spike_p: float = 0.0
    #: Extra delay added on a spike.
    spike_delay: float = 50.0

    def validate(self) -> None:
        for name in ("drop_p", "dup_p", "reorder_p", "spike_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise NetworkError(f"LinkFaults.{name}={p!r} not in [0, 1]")
        if self.reorder_spread < 0 or self.spike_delay < 0:
            raise NetworkError("fault delays must be non-negative")

    @property
    def active(self) -> bool:
        return any((self.drop_p, self.dup_p, self.reorder_p, self.spike_p))


@dataclass
class CrashSpec:
    """One scheduled crash/restart of a process.

    While down, the process receives nothing (in-flight deliveries are
    dropped on arrival) and sends nothing (its threads are frozen).  On
    restart it loses uncommitted speculative state — its own pending
    guesses abort — and rebuilds volatile thread state by full-journal
    replay from the snapshot layer; committed state survives.
    """

    process: str
    at: float                    # virtual time of the crash
    restart_after: float = 50.0  # downtime before the restart

    def validate(self) -> None:
        if self.at < 0 or self.restart_after <= 0:
            raise NetworkError(
                f"crash of {self.process!r} needs at >= 0 and "
                f"restart_after > 0"
            )


@dataclass
class FaultPlan:
    """A complete, seeded fault schedule for one run.

    ``window`` optionally restricts message faults to a virtual-time
    interval ``(start, end)``; crashes fire at their own times regardless.
    """

    seed: int = 0
    data: LinkFaults = field(default_factory=LinkFaults)
    control: LinkFaults = field(default_factory=LinkFaults)
    crashes: List[CrashSpec] = field(default_factory=list)
    window: Optional[Tuple[float, float]] = None

    def validate(self) -> None:
        self.data.validate()
        self.control.validate()
        for crash in self.crashes:
            crash.validate()

    def in_window(self, now: float) -> bool:
        if self.window is None:
            return True
        start, end = self.window
        return start <= now < end

    @property
    def active(self) -> bool:
        return self.data.active or self.control.active or bool(self.crashes)


@dataclass
class TaskFaults:
    """Per-task fault probabilities for pool-submitted segment labor.

    Each probability is drawn once per submitted task (from the plan's
    ``"exec.tasks"`` stream, in submission order — which is deterministic
    because submissions happen on the driver in virtual-event order).  The
    classes are checked in the order listed here; at most one fault is
    injected per task.
    """

    #: Probability the worker running the task dies before delivering
    #: (transient: a retry on a fresh worker succeeds).
    kill_p: float = 0.0
    #: Probability the payload hangs: it blocks on the raw clock for
    #: ``hang_extra`` real seconds, ignoring its cancel token — the case
    #: only a watchdog deadline can detect.
    hang_p: float = 0.0
    #: Real seconds a hung payload stays stuck.
    hang_extra: float = 0.25
    #: Probability the payload is poisoned: it raises deterministically on
    #: every attempt (retries fail too; only quarantine helps).
    poison_p: float = 0.0
    #: Probability the labor completes but its result is lost in transit
    #: (transient: a retry re-earns it).
    lose_result_p: float = 0.0

    def validate(self) -> None:
        for name in ("kill_p", "hang_p", "poison_p", "lose_result_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise NetworkError(f"TaskFaults.{name}={p!r} not in [0, 1]")
        if self.hang_extra < 0:
            raise NetworkError("TaskFaults.hang_extra must be non-negative")

    @property
    def active(self) -> bool:
        return any((self.kill_p, self.hang_p, self.poison_p,
                    self.lose_result_p))


@dataclass
class WorkerKillSpec:
    """One scheduled worker kill at a virtual time, mid-flight.

    When the kill event fires, up to ``kills`` in-flight tasks (oldest
    first, by submission order) lose their worker: their labor is
    discarded and the recovery layer must re-earn it on a fresh worker.
    If fewer tasks are in flight, the remainder is banked and applied to
    the next submissions, so a kill never silently misses.
    """

    at: float        # virtual time of the kill
    kills: int = 1   # how many in-flight tasks lose their worker

    def validate(self) -> None:
        if self.at < 0 or self.kills < 1:
            raise NetworkError(
                f"WorkerKillSpec needs at >= 0 and kills >= 1 "
                f"(got at={self.at!r}, kills={self.kills!r})"
            )


@dataclass
class ExecFaultPlan:
    """A complete, seeded exec-fault schedule for one run.

    The substrate counterpart of :class:`FaultPlan`: same declarative
    shape, same seeded-stream determinism, but aimed at the worker pools
    instead of the wire.  ``window`` optionally restricts the per-task
    faults to a virtual-time interval; scheduled kills fire at their own
    times regardless (mirroring how crashes relate to message faults).
    """

    seed: int = 0
    tasks: TaskFaults = field(default_factory=TaskFaults)
    kills: List[WorkerKillSpec] = field(default_factory=list)
    window: Optional[Tuple[float, float]] = None

    def validate(self) -> None:
        self.tasks.validate()
        for kill in self.kills:
            kill.validate()

    def in_window(self, now: float) -> bool:
        if self.window is None:
            return True
        start, end = self.window
        return start <= now < end

    @property
    def active(self) -> bool:
        return self.tasks.active or bool(self.kills)


class FaultyNetwork(Network):
    """A :class:`Network` that executes a :class:`FaultPlan`.

    Faults apply only between *participating* endpoints (``protect`` a name
    to exempt it — the system exempts external sinks) and only while no
    endpoint of the link is down.  Messages to or from a down process are
    dropped at the wire, which is what makes a crash lossy for in-flight
    traffic.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        latency_model: LatencyModel,
        plan: FaultPlan,
        *,
        stats: Optional[Stats] = None,
        fifo_links: bool = True,
        bandwidth: Optional[float] = None,
    ) -> None:
        super().__init__(
            scheduler,
            latency_model,
            stats=stats,
            fifo_links=fifo_links,
            bandwidth=bandwidth,
        )
        plan.validate()
        self.plan = plan
        self.rng = RngRegistry(plan.seed)
        self.down: Set[str] = set()
        self.protected: Set[str] = set()

    # ------------------------------------------------------------- control

    def protect(self, name: str) -> None:
        """Exempt an endpoint (e.g. an external sink) from all faults."""
        self.protected.add(name)

    def mark_down(self, name: str) -> None:
        self.down.add(name)

    def mark_up(self, name: str) -> None:
        self.down.discard(name)

    # ------------------------------------------------------------- sending

    def _draw(self, stream: str) -> float:
        return float(self.rng.stream(stream).uniform(0.0, 1.0))

    def send(
        self,
        src: str,
        dst: str,
        payload: Any,
        *,
        control: bool = False,
        size: int = 1,
    ) -> float:
        if src in self.protected or dst in self.protected:
            return super().send(src, dst, payload, control=control, size=size)
        kind = "control" if control else "data"
        if src in self.down or dst in self.down:
            # Account the loss against the plain delivery time so the FIFO
            # clamp and bandwidth bookkeeping stay consistent either way.
            deliver_at = self._delivery_time(src, dst, size)
            self.stats.incr(f"faults.{kind}.down_dropped")
            return deliver_at
        faults = self.plan.control if control else self.plan.data
        if not faults.active or not self.plan.in_window(self.scheduler.now):
            return super().send(src, dst, payload, control=control, size=size)

        stream = f"faults.{kind}"
        if self._draw(stream) < faults.drop_p:
            deliver_at = self._delivery_time(src, dst, size)
            self.stats.incr(f"faults.{kind}.dropped")
            return deliver_at

        extra = 0.0
        fifo: Optional[bool] = None
        if faults.spike_p and self._draw(stream) < faults.spike_p:
            extra += faults.spike_delay
            self.stats.incr(f"faults.{kind}.spiked")
        if faults.reorder_p and self._draw(stream) < faults.reorder_p:
            extra += float(
                self.rng.stream(stream).uniform(0.0, faults.reorder_spread)
            )
            fifo = False
            self.stats.incr(f"faults.{kind}.reordered")
        deliver_at = self._delivery_time(
            src, dst, size, extra_delay=extra, fifo=fifo
        )
        self._schedule_delivery(src, dst, payload, deliver_at, control, size)

        if faults.dup_p and self._draw(stream) < faults.dup_p:
            dup_extra = float(
                self.rng.stream(stream).uniform(0.0, faults.reorder_spread)
            )
            dup_at = self._delivery_time(
                src, dst, size, extra_delay=dup_extra, fifo=False
            )
            self._schedule_delivery(src, dst, payload, dup_at, control, size)
            self.stats.incr(f"faults.{kind}.duplicated")
        return deliver_at
