"""Named, seeded random streams.

Every source of randomness in a simulation (per-link jitter, workload
generation, guess oracles) draws from its own named stream derived from the
master seed.  This keeps experiments reproducible and — crucially — makes
adding a new random consumer *not* perturb the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngRegistry:
    """Factory of independent :class:`numpy.random.Generator` streams.

    Each stream is keyed by a string name; the stream's seed is derived from
    ``(master_seed, name)`` by hashing, so streams are mutually independent
    and stable across runs and across unrelated code changes.
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode("utf-8")
            ).digest()
            seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(seed)
            self._streams[name] = gen
        return gen

    def reset(self) -> None:
        """Drop all streams so the next access re-creates them from scratch."""
        self._streams.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RngRegistry(master_seed={self.master_seed}, "
            f"streams={sorted(self._streams)})"
        )
