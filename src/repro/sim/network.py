"""Message transport with pluggable latency models.

The paper's time faults (§2, Fig. 4) arise purely from relative message
latencies: X's direct call to Z can beat the causally-earlier traffic routed
through Y.  The network therefore exposes latency as a first-class model —
fixed, per-link, randomly jittered, or deliberately *skewed* to force the
figure scenarios deterministically.

Links are FIFO by default (like a TCP connection between two processes);
cross-link ordering is whatever the latencies produce, which is exactly the
source of time faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

import sys

from repro.errors import NetworkError
from repro.sim.events import PRIORITY_CONTROL, PRIORITY_NORMAL

#: Interned per-plane stat keys: the delivery path runs once per message,
#: so even building these key strings per send shows up in the kernel bench.
_MSGS_CONTROL = sys.intern("net.msgs.control")
_MSGS_DATA = sys.intern("net.msgs.data")
_BYTES_CONTROL = sys.intern("net.bytes.control")
_BYTES_DATA = sys.intern("net.bytes.data")
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Scheduler
from repro.sim.stats import Stats


class LatencyModel:
    """Maps a (src, dst) pair to a one-way delay for the next message."""

    def delay(self, src: str, dst: str) -> float:
        """One-way delay for the next message on (src, dst)."""
        raise NotImplementedError


@dataclass
class FixedLatency(LatencyModel):
    """Every message takes exactly ``latency`` time units."""

    latency: float = 1.0

    def delay(self, src: str, dst: str) -> float:
        """Constant one-way delay."""
        return self.latency


class PerLinkLatency(LatencyModel):
    """Explicit per-directed-link latencies with a default fallback.

    ``links`` maps ``(src, dst)`` to a latency.  Used by the figure
    scenarios, where e.g. the X→Z link must be faster than Y→Z to trigger
    the Fig. 4 time fault.
    """

    def __init__(self, default: float = 1.0, links: Optional[dict] = None) -> None:
        self.default = default
        self.links: dict[tuple[str, str], float] = dict(links or {})

    def set(self, src: str, dst: str, latency: float) -> None:
        """Override one directed link's latency."""
        self.links[(src, dst)] = latency

    def delay(self, src: str, dst: str) -> float:
        """The link's latency, or the default."""
        return self.links.get((src, dst), self.default)


class JitteredLatency(LatencyModel):
    """Base latency plus uniform jitter drawn from a named seeded stream."""

    def __init__(
        self,
        base: float,
        jitter: float,
        rng: RngRegistry,
        stream: str = "net-jitter",
    ) -> None:
        if jitter < 0 or base < 0:
            raise NetworkError("latency parameters must be non-negative")
        self.base = base
        self.jitter = jitter
        self._rng = rng
        self._stream = stream

    def delay(self, src: str, dst: str) -> float:
        """Base latency plus a seeded uniform jitter draw."""
        if self.jitter == 0:
            return self.base
        return self.base + float(self._rng.stream(self._stream).uniform(0, self.jitter))


class SkewedLatency(LatencyModel):
    """Wrap another model but override specific links — handy for figures."""

    def __init__(self, inner: LatencyModel, overrides: dict) -> None:
        self.inner = inner
        self.overrides: dict[tuple[str, str], float] = dict(overrides)

    def delay(self, src: str, dst: str) -> float:
        """The override if present, else the inner model's delay."""
        if (src, dst) in self.overrides:
            return self.overrides[(src, dst)]
        return self.inner.delay(src, dst)


class Network:
    """Delivers opaque payloads between named endpoints through the scheduler.

    Endpoints register a handler; ``send`` schedules the handler call after
    the modelled latency.

    **FIFO contract.**  With ``fifo_links=True`` (the default), each
    *directed link* ``(src, dst)`` delivers messages in send order: every
    delivery is clamped to be no earlier than the previous delivery on the
    same link, and simultaneous deliveries untie in send order (the event
    queue is FIFO within a timestamp+priority class).  This is the paper's
    §4.2.5 per-channel assumption — a TCP-like connection per process pair.
    Nothing is guaranteed *across* links; cross-link races are exactly the
    source of the paper's time faults.

    With ``fifo_links=False`` the per-link clamp is off and a latency model
    with per-message variance (e.g. :class:`JitteredLatency`) **will**
    reorder messages within a link.  The optimistic protocol's control
    handlers tolerate this (commit histories are monotonic and handlers are
    idempotent), but the paper's correctness argument does not cover it —
    use it only with the hardened runtime
    (:class:`~repro.core.config.ResilienceConfig`) or in tests that assert
    convergence under reordering.

    ``bandwidth`` (size units per time unit, ``None`` = infinite) models
    link capacity: each message occupies its directed link for
    ``size / bandwidth`` before the propagation latency starts, and
    messages on the same link serialize.  This is what makes guard-tag
    overhead (and §4.1.2's compression) cost real time — the paper's
    "bandwidth is high but round-trip delays are long" regime is
    ``bandwidth → ∞``.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        latency_model: LatencyModel,
        *,
        stats: Optional[Stats] = None,
        fifo_links: bool = True,
        bandwidth: Optional[float] = None,
    ) -> None:
        if bandwidth is not None and bandwidth <= 0:
            raise NetworkError(f"bandwidth must be positive, got {bandwidth!r}")
        self.scheduler = scheduler
        self.latency_model = latency_model
        self.stats = stats if stats is not None else Stats()
        self.fifo_links = fifo_links
        self.bandwidth = bandwidth
        self._handlers: dict[str, Callable[[str, Any], None]] = {}
        self._last_delivery: dict[tuple[str, str], float] = {}
        self._link_busy: dict[tuple[str, str], float] = {}

    def register(self, name: str, handler: Callable[[str, Any], None]) -> None:
        """Attach ``handler(src, payload)`` as the endpoint for ``name``."""
        if name in self._handlers:
            raise NetworkError(f"endpoint {name!r} registered twice")
        self._handlers[name] = handler

    def endpoints(self) -> list[str]:
        """All registered endpoint names, sorted."""
        return sorted(self._handlers)

    def send(
        self,
        src: str,
        dst: str,
        payload: Any,
        *,
        control: bool = False,
        size: int = 1,
    ) -> float:
        """Send ``payload`` from ``src`` to ``dst``; returns delivery time.

        ``control`` marks protocol traffic (COMMIT/ABORT/PRECEDENCE): counted
        separately and given delivery priority among simultaneous events.
        ``size`` is an abstract payload size used for overhead accounting.
        """
        deliver_at = self._delivery_time(src, dst, size)
        self._schedule_delivery(src, dst, payload, deliver_at, control, size)
        return deliver_at

    # The two halves of ``send``, exposed separately so decorators (see
    # :mod:`repro.sim.faults`) can perturb delivery without re-implementing
    # bandwidth/latency/FIFO bookkeeping.

    def _delivery_time(
        self,
        src: str,
        dst: str,
        size: int,
        *,
        extra_delay: float = 0.0,
        fifo: Optional[bool] = None,
    ) -> float:
        """Compute (and book-keep) the delivery time of one message.

        ``extra_delay`` is added after the modelled latency (latency
        spikes); ``fifo=False`` bypasses the per-link FIFO clamp for this
        one message (deliberate reordering) without updating the clamp, so
        later messages are not dragged behind the straggler.
        """
        if dst not in self._handlers:
            raise NetworkError(f"no endpoint registered for {dst!r}")
        delay = self.latency_model.delay(src, dst)
        if delay < 0:
            raise NetworkError(f"negative latency {delay!r} on link {src}->{dst}")
        # direct clock read: this runs once per message (docs/PERF.md)
        depart_at = self.scheduler.clock._now
        if self.bandwidth is not None:
            tx = size / self.bandwidth
            busy = self._link_busy.get((src, dst), 0.0)
            depart_at = max(depart_at, busy) + tx
            self._link_busy[(src, dst)] = depart_at
            self.stats.record("net.tx_time", self.scheduler.now, tx)
        deliver_at = depart_at + delay + extra_delay
        use_fifo = self.fifo_links if fifo is None else (fifo and self.fifo_links)
        if use_fifo:
            prev = self._last_delivery.get((src, dst), 0.0)
            deliver_at = max(deliver_at, prev)
            self._last_delivery[(src, dst)] = deliver_at
        return deliver_at

    def _schedule_delivery(
        self,
        src: str,
        dst: str,
        payload: Any,
        deliver_at: float,
        control: bool,
        size: int,
    ) -> None:
        """Schedule the handler call and account the message.

        Hot path: the delivery event is fire-and-forget (no cancellable
        handle), the label is only formatted when someone will read it
        (tracer attached or ``debug_labels``), and the stat keys are
        interned constants — per-message f-strings are measurable at
        million-event scale (see ``repro.bench.kernel``).
        """
        handler = self._handlers[dst]
        scheduler = self.scheduler
        if scheduler.debug_labels or scheduler.tracer.enabled:
            label = f"deliver {src}->{dst}"
        else:
            label = "deliver"
        scheduler.post(
            deliver_at,
            lambda: handler(src, payload),
            PRIORITY_CONTROL if control else PRIORITY_NORMAL,
            label,
        )
        counters = self.stats.counters
        if control:
            counters[_MSGS_CONTROL] += 1
            counters[_BYTES_CONTROL] += size
        else:
            counters[_MSGS_DATA] += 1
            counters[_BYTES_DATA] += size

    def broadcast(
        self,
        src: str,
        payload: Any,
        *,
        control: bool = True,
        size: int = 1,
        exclude_self: bool = False,
    ) -> None:
        """Send ``payload`` from ``src`` to every endpoint.

        The paper assumes control messages are broadcast (§4.2.5); a process
        also delivers control messages to itself (its own threads may hold
        the guard) unless ``exclude_self``.
        """
        for name in self.endpoints():
            if exclude_self and name == src:
                continue
            self.send(src, name, payload, control=control, size=size)
