"""Discrete-event scheduler: the main loop of the simulation substrate.

The scheduler owns the virtual clock and the event queue, and offers timers
(used by the optimistic runtime for fork timeouts, §3.2 of the paper).  A
step limit guards against protocol bugs that would otherwise loop forever.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import LivenessError
from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventQueue, PRIORITY_NORMAL


class Timer:
    """Handle for a scheduled timeout that can be cancelled.

    Wraps the underlying :class:`Event`; cancelling an already-fired or
    already-cancelled timer is a no-op, so callers never need to track
    whether the race was won.
    """

    __slots__ = ("_event", "fired")

    def __init__(self, event: Event) -> None:
        self._event = event
        self.fired = False

    def cancel(self) -> None:
        self._event.cancel()

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class Scheduler:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    max_steps:
        Upper bound on processed events; exceeding it raises
        :class:`~repro.errors.LivenessError`.  This converts runtime
        non-termination bugs into test failures.
    tracer:
        Optional :class:`~repro.obs.Tracer`; when enabled, timer firings
        are recorded as ``timer`` events.  Defaults to the no-op tracer.
    """

    def __init__(self, max_steps: int = 1_000_000, tracer=None) -> None:
        from repro.obs.tracer import NULL_TRACER

        self.clock = VirtualClock()
        self.queue = EventQueue()
        self.max_steps = max_steps
        self.steps_executed = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER

    @property
    def now(self) -> float:
        return self.clock.now

    def at(
        self,
        time: float,
        action: Callable[[], None],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute virtual time ``time``."""
        if time < self.now:
            time = self.now
        return self.queue.push(time, action, priority=priority, label=label)

    def after(
        self,
        delay: float,
        action: Callable[[], None],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` ``delay`` time units from now."""
        if delay < 0:
            delay = 0.0
        return self.queue.push(
            self.now + delay, action, priority=priority, label=label
        )

    def timer(self, delay: float, action: Callable[[], None], *, label: str = "timer") -> Timer:
        """Arm a cancellable timeout firing ``delay`` units from now."""
        holder: list[Timer] = []

        def fire() -> None:
            holder[0].fired = True
            if self.tracer.enabled:
                self.tracer.event("timer", "", self.now, name=label)
            action()

        ev = self.after(delay, fire, label=label)
        t = Timer(ev)
        holder.append(t)
        return t

    def step(self) -> bool:
        """Process one event.  Returns ``False`` when the queue is empty."""
        ev = self.queue.pop()
        if ev is None:
            return False
        self.steps_executed += 1
        if self.steps_executed > self.max_steps:
            raise LivenessError(
                f"scheduler exceeded max_steps={self.max_steps}; "
                f"likely livelock (last event label={ev.label!r})"
            )
        self.clock.advance_to(ev.time)
        ev.action()
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains (or past ``until``).  Returns final time."""
        while True:
            nxt = self.queue.peek_time()
            if nxt is None:
                break
            if until is not None and nxt > until:
                self.clock.advance_to(until)
                break
            self.step()
        return self.now
