"""Discrete-event scheduler: the main loop of the simulation substrate.

The scheduler owns the virtual clock and the event queue, and offers timers
(used by the optimistic runtime for fork timeouts, §3.2 of the paper).  A
step limit guards against protocol bugs that would otherwise loop forever.

This is the hottest loop in the repository — every message, timer, and
control frame of every benchmark flows through :meth:`Scheduler.step` — so
it follows the zero-cost-observability contract (see ``docs/PERF.md``):
no formatting, no dict building, and no counter churn happen per event
unless a tracer with ``enabled = True`` is attached or ``debug_labels``
is set.  Kernel-health counters are *pull-based*: the queue and timer
wheels count internally and :meth:`kernel_counters` harvests them once at
end of run.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import LivenessError
from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventQueue, PRIORITY_NORMAL


class Timer:
    """Handle for a scheduled timeout that can be cancelled.

    Wraps the underlying :class:`Event`; cancelling an already-fired or
    already-cancelled timer is a no-op, so callers never need to track
    whether the race was won.

    The handle doubles as the scheduled callable (it marks itself fired,
    then runs the action) so arming a timer allocates no extra closure —
    timers are armed per fork and per frame, so this is hot.
    """

    __slots__ = ("_event", "fired", "_action", "_scheduler", "_label")

    def __init__(self, event: Optional[Event],
                 action: Optional[Callable[[], None]] = None,
                 scheduler: Optional["Scheduler"] = None,
                 label: str = "timer") -> None:
        self._event = event
        self.fired = False
        self._action = action
        self._scheduler = scheduler
        self._label = label

    def __call__(self) -> None:
        self.fired = True
        scheduler = self._scheduler
        if scheduler is not None and scheduler.tracer.enabled:
            scheduler.tracer.event("timer", "", scheduler.now,
                                   name=self._label)
        if self._action is not None:
            self._action()

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()

    @property
    def cancelled(self) -> bool:
        return self._event is not None and self._event.cancelled


class Scheduler:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    max_steps:
        Upper bound on processed events; exceeding it raises
        :class:`~repro.errors.LivenessError`.  This converts runtime
        non-termination bugs into test failures.
    tracer:
        Optional :class:`~repro.obs.Tracer`; when enabled, timer firings
        are recorded as ``timer`` events.  Defaults to the no-op tracer.
    queue:
        Event-queue instance; defaults to the calendar queue
        (:class:`~repro.sim.events.EventQueue`).  The A/B kernel bench
        passes the preserved seed heap
        (:class:`repro.sim.legacy_events.EventQueue`) here.
    debug_labels:
        When True, callers that format rich per-event labels (the network,
        the transport) do so even without a tracer attached.  Off by
        default: label formatting is measurable on million-event runs.
    """

    __slots__ = ("clock", "queue", "max_steps", "steps_executed", "tracer",
                 "debug_labels", "_fast_schedule", "_wheels")

    def __init__(self, max_steps: int = 1_000_000, tracer=None, *,
                 queue=None, debug_labels: bool = False) -> None:
        from repro.obs.tracer import NULL_TRACER

        self.clock = VirtualClock()
        self.queue = queue if queue is not None else EventQueue()
        self.max_steps = max_steps
        self.steps_executed = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.debug_labels = debug_labels
        #: bound no-handle fast path when the queue offers one
        self._fast_schedule = getattr(self.queue, "schedule", None)
        self._wheels: dict[float, object] = {}

    @property
    def now(self) -> float:
        return self.clock._now

    def at(
        self,
        time: float,
        action: Callable[[], None],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute virtual time ``time``."""
        now = self.clock._now
        if time < now:
            time = now
        return self.queue.push(time, action, priority=priority, label=label)

    def after(
        self,
        delay: float,
        action: Callable[[], None],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` ``delay`` time units from now."""
        if delay < 0:
            delay = 0.0
        return self.queue.push(
            self.clock._now + delay, action, priority=priority, label=label
        )

    def post(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> None:
        """Fire-and-forget :meth:`at`: no cancellable handle is allocated.

        The hot path for message deliveries, which are never cancelled.
        Falls back to :meth:`at` on queues without a no-handle fast path.
        """
        now = self.clock._now
        if time < now:
            time = now
        fast = self._fast_schedule
        if fast is not None:
            fast(time, action, priority, label)
        else:
            self.queue.push(time, action, priority=priority, label=label)

    def timer(self, delay: float, action: Callable[[], None], *, label: str = "timer") -> Timer:
        """Arm a cancellable timeout firing ``delay`` units from now."""
        t = Timer(None, action, self, label)
        t._event = self.after(delay, t, label=label)
        return t

    def wheel(self, granularity: float):
        """The shared :class:`~repro.sim.wheel.TimerWheel` for ``granularity``.

        Wheels are cached per granularity so all callers with the same
        slot width share slots (and therefore tick events).
        """
        wheel = self._wheels.get(granularity)
        if wheel is None:
            from repro.sim.wheel import TimerWheel

            wheel = TimerWheel(self, granularity)
            self._wheels[granularity] = wheel
        return wheel

    def step(self) -> bool:
        """Process one event.  Returns ``False`` when the queue is empty."""
        entry = self.queue.pop_entry()
        if entry is None:
            return False
        self.steps_executed += 1
        if self.steps_executed > self.max_steps:
            raise LivenessError(
                f"scheduler exceeded max_steps={self.max_steps}; "
                f"likely livelock (last event label={entry[5]!r})"
            )
        # inline clock.advance_to: a method call (and re-float) per event
        # is measurable; the backwards check stays
        clock = self.clock
        t = entry[0]
        if t >= clock._now:
            clock._now = t
        else:
            clock.advance_to(t)  # raises ClockError (corrupted queue)
        entry[3]()
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains (or past ``until``).  Returns final time."""
        if until is None:
            step = self.step
            while step():
                pass
            return self.now
        while True:
            nxt = self.queue.peek_time()
            if nxt is None:
                break
            if nxt > until:
                self.clock.advance_to(until)
                break
            self.step()
        return self.now

    def kernel_counters(self) -> dict[str, int]:
        """Harvest queue/wheel health counters under the ``sim.`` namespace.

        Pull-based so the hot path never touches a stats dict; the system
        merges these into its :class:`~repro.sim.stats.Stats` at end of
        run.  ``sim.timers_cancelled_pending`` is the high-water mark of
        lazily-cancelled entries awaiting compaction or pop.
        """
        out = {"sim.events_processed": self.steps_executed}
        counters = getattr(self.queue, "counters", None)
        if counters is not None:
            for key, value in counters().items():
                out[f"sim.{key}"] = value
        for wheel in self._wheels.values():
            for key, value in wheel.counters().items():
                out[f"sim.{key}"] = out.get(f"sim.{key}", 0) + value
        return out
