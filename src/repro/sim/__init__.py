"""Deterministic discrete-event simulation substrate.

This package stands in for the paper's execution environment (Mach processes
on a real network): it provides virtual time, an event queue with
deterministic tie-breaking, latency-modelled message delivery, named seeded
random streams, and run statistics.  All performance results in the
reproduction are *virtual-time* measurements taken from this substrate, so
they are exactly reproducible and unaffected by the Python GIL.
"""

from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventQueue
from repro.sim.scheduler import Scheduler, Timer
from repro.sim.network import (
    FixedLatency,
    JitteredLatency,
    LatencyModel,
    Network,
    PerLinkLatency,
    SkewedLatency,
)
from repro.sim.faults import CrashSpec, FaultPlan, FaultyNetwork, LinkFaults
from repro.sim.rng import RngRegistry
from repro.sim.stats import Stats

__all__ = [
    "LinkFaults",
    "CrashSpec",
    "FaultPlan",
    "FaultyNetwork",
    "VirtualClock",
    "Event",
    "EventQueue",
    "Scheduler",
    "Timer",
    "LatencyModel",
    "FixedLatency",
    "PerLinkLatency",
    "JitteredLatency",
    "SkewedLatency",
    "Network",
    "RngRegistry",
    "Stats",
]
