"""Slotted timer wheel: one scheduler event per slot, not per timer.

The hardened control plane arms one retransmission timer per unacked frame
(:mod:`repro.core.transport`); under load that is an *army* of timers, and
almost all of them are cancelled by the ack racing the timeout.  Paying a
full event-queue push (and a lazy-cancelled pop later) per frame makes the
timer army the kernel's dominant cost — ``repro.bench.kernel`` measures it.

A :class:`TimerWheel` quantizes deadlines up to a slot boundary
(``granularity`` virtual-time units) and schedules **one** tick event per
non-empty slot.  Arming a timer is a list append; cancelling decrements
the slot's live count, and when a slot's last timer is cancelled its tick
event is cancelled too, so a fully-acked run schedules *zero* extra
events at quiescence (this is what keeps the chaos bench's fig3 overhead
gate at 0%).  Timers in one slot fire in arming order at the slot
boundary — deterministic, like everything else in the kernel.

The trade-off is precision: a wheel timer fires up to ``granularity``
*late* (never early).  That is the correct contract for timeouts —
retransmission and divergence timers are lower bounds — but not for exact
deadlines; anything needing exact firing times keeps using
:meth:`~repro.sim.scheduler.Scheduler.timer`.  Setting a transport's
``timer_wheel_granularity`` to 0 restores exact per-frame timers.
"""

from __future__ import annotations

from math import ceil
from threading import get_ident
from typing import Callable, Dict, List, Optional

from repro.errors import SimulationError
from repro.sim import events as _events


class WheelTimer:
    """Cancellable handle for one wheel-slotted timeout.

    API-compatible with :class:`~repro.sim.scheduler.Timer` (``cancel()``,
    ``cancelled``, ``fired``), so callers can hold either interchangeably.
    """

    __slots__ = ("action", "fired", "cancelled", "_wheel", "_slot")

    def __init__(self, action: Callable[[], None], wheel: "TimerWheel",
                 slot: int) -> None:
        self.action = action
        self.fired = False
        self.cancelled = False
        self._wheel: Optional["TimerWheel"] = wheel
        self._slot = slot

    def cancel(self) -> None:
        """Cancel the timer; a no-op once fired or already cancelled."""
        if self.fired or self.cancelled:
            return
        self.cancelled = True
        wheel = self._wheel
        if wheel is not None:
            self._wheel = None
            wheel._note_cancel(self._slot)


class _Slot:
    __slots__ = ("entries", "live", "tick")

    def __init__(self) -> None:
        self.entries: List[WheelTimer] = []
        self.live = 0
        self.tick = None  # the slot's scheduler Event


class TimerWheel:
    """Groups timers into fixed-width slots ticked by single events."""

    __slots__ = ("scheduler", "granularity", "_inv", "_slots",
                 "timers_armed", "timers_fired", "timers_cancelled",
                 "ticks", "ticks_cancelled", "_owner")

    def __init__(self, scheduler, granularity: float) -> None:
        if granularity <= 0:
            raise ValueError(
                f"wheel granularity must be positive: {granularity!r}")
        self.scheduler = scheduler
        self.granularity = float(granularity)
        self._inv = 1.0 / self.granularity
        self._slots: Dict[int, _Slot] = {}
        self.timers_armed = 0
        self.timers_fired = 0
        self.timers_cancelled = 0
        self.ticks = 0
        self.ticks_cancelled = 0
        #: thread allowed to arm timers (None = unchecked); see
        #: :data:`repro.sim.events.DEBUG_OWNERSHIP`
        self._owner: Optional[int] = (
            get_ident() if _events.DEBUG_OWNERSHIP else None)

    def after(self, delay: float, action: Callable[[], None]) -> WheelTimer:
        """Arm ``action`` to fire at the first slot boundary >= now+delay."""
        if self._owner is not None and get_ident() != self._owner:
            raise SimulationError(
                "TimerWheel armed from a foreign thread: scheduler surfaces "
                "are owned by the backend's event-loop thread "
                f"(owner={self._owner}, caller={get_ident()})")
        if delay < 0:
            delay = 0.0
        deadline = self.scheduler.now + delay
        slot_key = ceil(deadline * self._inv)
        slot = self._slots.get(slot_key)
        if slot is None:
            slot = _Slot()
            self._slots[slot_key] = slot
            slot.tick = self.scheduler.at(
                slot_key * self.granularity,
                lambda: self._tick(slot_key),
                label="wheel-tick",
            )
        timer = WheelTimer(action, self, slot_key)
        slot.entries.append(timer)
        slot.live += 1
        self.timers_armed += 1
        return timer

    def _tick(self, slot_key: int) -> None:
        slot = self._slots.pop(slot_key, None)
        if slot is None:  # fully cancelled in the same instant
            return
        self.ticks += 1
        for timer in slot.entries:
            if timer.cancelled:
                continue
            timer.fired = True
            timer._wheel = None
            self.timers_fired += 1
            timer.action()

    def _note_cancel(self, slot_key: int) -> None:
        self.timers_cancelled += 1
        slot = self._slots.get(slot_key)
        if slot is None:
            return
        slot.live -= 1
        if slot.live == 0:
            # last live timer gone: the tick itself is dead weight
            del self._slots[slot_key]
            if slot.tick is not None:
                slot.tick.cancel()
                self.ticks_cancelled += 1

    def pending(self) -> int:
        """Live timers currently armed (tests/diagnostics)."""
        return sum(slot.live for slot in self._slots.values())

    def counters(self) -> dict[str, int]:
        return {
            "wheel_timers_armed": self.timers_armed,
            "wheel_timers_fired": self.timers_fired,
            "wheel_timers_cancelled": self.timers_cancelled,
            "wheel_ticks": self.ticks,
            "wheel_ticks_cancelled": self.ticks_cancelled,
        }
