"""Virtual time for the discrete-event simulator.

Time is a non-negative float that only moves forward.  The clock is owned by
the :class:`~repro.sim.scheduler.Scheduler`; everything else reads it through
``scheduler.now``.
"""

from __future__ import annotations

from repro.errors import ClockError


class VirtualClock:
    """Monotonically non-decreasing virtual clock.

    The scheduler advances the clock to each event's timestamp.  Attempting
    to move it backwards raises :class:`~repro.errors.ClockError`, which
    would indicate a corrupted event queue.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time.

        The scheduler (the clock's owner) reads and advances ``_now``
        directly in its event loop — a property call per event is
        measurable at million-event scale (see ``repro.bench.kernel``);
        everyone else goes through this read-only property.
        """
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t``.

        ``t`` may equal the current time (simultaneous events) but may not
        precede it.
        """
        if t < self._now:
            raise ClockError(
                f"clock moving backwards: now={self._now!r}, requested={t!r}"
            )
        self._now = float(t)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now!r})"
