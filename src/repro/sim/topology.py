"""Network topology builders.

The paper's motivation is distribution: "communication delays are long
relative to the speed of computation".  These helpers build
:class:`~repro.sim.network.PerLinkLatency` models for common deployment
shapes so scenarios can say "client on a WAN, servers co-located" in one
line.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

from repro.errors import NetworkError
from repro.sim.network import PerLinkLatency


def uniform(names: Iterable[str], latency: float) -> PerLinkLatency:
    """Everyone the same distance apart (a LAN)."""
    return PerLinkLatency(default=latency)


def star(hub: str, leaves: Sequence[str], *, spoke: float,
         hub_local: float = 0.0) -> PerLinkLatency:
    """Leaves talk to the hub over ``spoke``; leaf↔leaf pays two spokes."""
    model = PerLinkLatency(default=2 * spoke)
    for leaf in leaves:
        model.set(hub, leaf, spoke)
        model.set(leaf, hub, spoke)
    model.set(hub, hub, hub_local)
    return model


def clusters(groups: Mapping[str, Sequence[str]], *, local: float,
             remote: float) -> PerLinkLatency:
    """Named clusters: cheap within a group, expensive across groups.

    The classic paper setting: ``clusters({"site-a": ["X"], "site-b":
    ["Y", "Z"]}, local=0.5, remote=20)`` puts the client a WAN away from
    co-located servers.
    """
    if local > remote:
        raise NetworkError("local latency exceeds remote latency")
    member_of: Dict[str, str] = {}
    for group, members in groups.items():
        for m in members:
            if m in member_of:
                raise NetworkError(f"process {m!r} in two clusters")
            member_of[m] = group
    model = PerLinkLatency(default=remote)
    names = list(member_of)
    for a in names:
        for b in names:
            if member_of[a] == member_of[b]:
                model.set(a, b, local)
    return model


def ring(names: Sequence[str], *, hop: float) -> PerLinkLatency:
    """Latency proportional to ring distance (min of both directions)."""
    n = len(names)
    if n < 2:
        raise NetworkError("ring needs at least two processes")
    model = PerLinkLatency(default=hop * (n // 2))
    for i, a in enumerate(names):
        for j, b in enumerate(names):
            dist = min((i - j) % n, (j - i) % n)
            model.set(a, b, hop * max(dist, 0))
    return model
