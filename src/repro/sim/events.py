"""Event queue for the discrete-event simulator.

Events are ordered by ``(time, priority, seq)``.  ``seq`` is a global
insertion counter, so two events scheduled for the same instant at the same
priority fire in insertion order — this is what makes whole simulations
deterministic and therefore replayable in tests.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SimulationError

#: Default priority for ordinary events.
PRIORITY_NORMAL = 0
#: Control-plane events (commit/abort propagation) fire before data events
#: scheduled at the same instant, mirroring an implementation that treats
#: control traffic as higher priority.
PRIORITY_CONTROL = -1


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Virtual time at which the event fires.
    priority:
        Lower fires first among simultaneous events.
    seq:
        Insertion sequence number (deterministic tie-break).
    action:
        Zero-argument callable run when the event fires.
    label:
        Human-readable tag used in debugging and statistics.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    #: owning queue while the event is pending in its heap; cleared on pop
    #: so cancelling an already-fired event cannot skew the live count
    _queue: Optional["EventQueue"] = field(compare=False, default=None,
                                           repr=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._live -= 1
            self._queue = None


class EventQueue:
    """Binary-heap event queue with deterministic ordering.

    Cancellation is lazy: cancelled events stay in the heap and are skipped
    on pop, which keeps ``cancel`` O(1).  A live-event count is maintained
    on push/pop/cancel, so ``len(queue)`` is O(1) instead of a heap scan.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(
        self,
        time: float,
        action: Callable[[], None],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at virtual time ``time`` and return the event."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time!r}")
        ev = Event(
            time=float(time),
            priority=priority,
            seq=next(self._counter),
            action=action,
            label=label,
        )
        ev._queue = self
        self._live += 1
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if not ev.cancelled:
                ev._queue = None
                self._live -= 1
                return ev
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        for ev in self._heap:
            ev._queue = None
        self._heap.clear()
        self._live = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EventQueue(pending={len(self)})"


def _never() -> None:  # pragma: no cover - placeholder action
    raise SimulationError("placeholder event should never fire")
