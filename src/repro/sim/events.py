"""Event queue for the discrete-event simulator.

Events are ordered by ``(time, priority, seq)``.  ``seq`` is a global
insertion counter, so two events scheduled for the same instant at the same
priority fire in insertion order — this is what makes whole simulations
deterministic and therefore replayable in tests.

The queue is a **calendar (bucket) queue** rather than a binary heap: the
event population of this simulator is overwhelmingly near-future (message
deliveries one latency ahead, timers a few RTOs ahead), so events are
binned into fixed-width time buckets held in a dict, with a small integer
heap ordering the non-empty bucket keys.  A push is an O(1) list append
(no Python-level ``__lt__`` calls at all — the seed's heap spent most of
its time in dataclass comparisons); a bucket is sorted once, with C tuple
comparisons, when the clock reaches it.  Pushes into the bucket currently
being drained (the common "schedule at now + 0" case) use ``bisect.insort``
over the undrained suffix, preserving exact ``(time, priority, seq)``
order.  ``tests/test_kernel_queue.py`` replays identical scripts through
this queue and the preserved seed heap (:mod:`repro.sim.legacy_events`)
and requires identical pop sequences.

Cancellation stays O(1) and lazy, but no longer unbounded: when the number
of cancelled-but-still-queued entries exceeds both a floor and the live
population, the queue compacts — rebuilding its buckets from live entries
only — so timer armies that arm-and-cancel (retransmission, fork
timeouts) cannot grow the queue without bound.  The high-water mark is
exported as the ``sim.timers_cancelled_pending`` stat.

Two scheduling surfaces exist:

* :meth:`EventQueue.push` returns a cancellable :class:`Event` handle —
  use it for timers and anything that may be cancelled;
* :meth:`EventQueue.schedule` is the fire-and-forget fast path (message
  deliveries): no handle object is allocated at all.
"""

from __future__ import annotations

import os
from bisect import insort
from heapq import heappop, heappush
from threading import get_ident
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

#: When true, queues and wheels record the thread that created them and
#: raise :class:`~repro.errors.SimulationError` if another thread touches
#: a scheduling surface.  The real executor backends
#: (:mod:`repro.exec.pool`) run *work payloads* on pool threads but keep
#: every scheduler interaction on the thread driving the event loop; this
#: flag turns that invariant into a hard check.  Enable via the
#: ``REPRO_DEBUG_OWNERSHIP`` environment variable or
#: :func:`set_ownership_debug`; off by default so the hot path pays only a
#: ``None`` test.
DEBUG_OWNERSHIP = os.environ.get("REPRO_DEBUG_OWNERSHIP", "") not in ("", "0")


def set_ownership_debug(enabled: bool) -> None:
    """Toggle owner-thread assertions for queues/wheels created *after* this
    call (existing instances keep the ownership mode they were built with)."""
    global DEBUG_OWNERSHIP
    DEBUG_OWNERSHIP = bool(enabled)

#: Default priority for ordinary events.
PRIORITY_NORMAL = 0
#: Control-plane events (commit/abort propagation) fire before data events
#: scheduled at the same instant, mirroring an implementation that treats
#: control traffic as higher priority.
PRIORITY_CONTROL = -1

#: Queue entry: ``(time, priority, seq, action, event-or-None, label)``.
#: ``seq`` is unique, so tuple comparison never reaches the callable.
Entry = Tuple[float, int, int, Callable[[], None], Optional["Event"], str]

#: Compaction floor: lazy-cancelled entries are tolerated until they
#: exceed this count *and* outnumber the live entries.
COMPACT_MIN_CANCELLED = 64


class Event:
    """A cancellable handle for one scheduled callback.

    Attributes
    ----------
    time:
        Virtual time at which the event fires.
    priority:
        Lower fires first among simultaneous events.
    seq:
        Insertion sequence number (deterministic tie-break).
    action:
        Zero-argument callable run when the event fires.
    label:
        Human-readable tag used in debugging and statistics.
    """

    __slots__ = ("time", "priority", "seq", "action", "label", "cancelled",
                 "_queue")

    def __init__(self, time: float, priority: int, seq: int,
                 action: Callable[[], None], label: str = "") -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        self.label = label
        self.cancelled = False
        #: owning queue while the event is pending; cleared on pop so
        #: cancelling an already-fired event cannot skew the live count
        self._queue: Optional["EventQueue"] = None

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            self._queue = None
            queue._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return ((self.time, self.priority, self.seq)
                < (other.time, other.priority, other.seq))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return (f"Event(t={self.time!r}, prio={self.priority}, "
                f"seq={self.seq}, label={self.label!r}{state})")


class EventQueue:
    """Calendar-queue with deterministic ``(time, priority, seq)`` ordering.

    ``width`` is the bucket span in virtual-time units.  Buckets are
    sparse (a dict keyed by ``int(time / width)``), so any time range
    works; the width only tunes how much sorting is amortized per bucket.
    The default of 1.0 matches the simulator's typical latency scale.
    """

    __slots__ = ("_width", "_inv_width", "_buckets", "_keys", "_cur",
                 "_cur_key", "_idx", "_seq", "_live", "_cancelled",
                 "cancelled_peak", "compactions", "cancelled_reclaimed",
                 "_owner")

    def __init__(self, width: float = 1.0) -> None:
        if width <= 0:
            raise SimulationError(f"bucket width must be positive: {width!r}")
        self._width = width
        self._inv_width = 1.0 / width
        self._buckets: dict[int, List[Entry]] = {}
        self._keys: List[int] = []          # heap of non-empty bucket keys
        self._cur: Optional[List[Entry]] = None  # bucket being drained
        self._cur_key = 0
        self._idx = 0                       # next undrained slot in _cur
        self._seq = 0
        self._live = 0
        self._cancelled = 0                 # cancelled entries still queued
        #: high-water mark of cancelled-pending entries (the
        #: ``sim.timers_cancelled_pending`` stat)
        self.cancelled_peak = 0
        #: threshold-triggered compaction runs performed
        self.compactions = 0
        #: cancelled entries reclaimed by compaction (vs. popped dead)
        self.cancelled_reclaimed = 0
        #: thread allowed to touch the queue (None = unchecked)
        self._owner: Optional[int] = get_ident() if DEBUG_OWNERSHIP else None

    def _check_owner(self) -> None:
        raise SimulationError(
            "EventQueue touched from a foreign thread: scheduler surfaces "
            "are owned by the backend's event-loop thread "
            f"(owner={self._owner}, caller={get_ident()}); real work must "
            "go through ExecutorBackend.submit_segment work payloads")

    def __len__(self) -> int:
        return self._live

    @property
    def cancelled_pending(self) -> int:
        """Cancelled entries still occupying queue slots."""
        return self._cancelled

    # -------------------------------------------------------------- insert

    def _insert(self, entry: Entry) -> None:
        key = int(entry[0] * self._inv_width)
        cur = self._cur
        if cur is not None and key <= self._cur_key:
            # lands in (or before) the bucket being drained: keep exact
            # order over the undrained suffix; an entry earlier than every
            # remaining one fires next, which is the soonest it can fire
            insort(cur, entry, lo=self._idx)
            return
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [entry]
            heappush(self._keys, key)
        else:
            bucket.append(entry)

    def push(
        self,
        time: float,
        action: Callable[[], None],
        *,
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at virtual time ``time`` and return the event."""
        if self._owner is not None and get_ident() != self._owner:
            self._check_owner()
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time!r}")
        time = float(time)
        self._seq += 1
        ev = Event(time, priority, self._seq, action, label)
        ev._queue = self
        self._insert((time, priority, self._seq, action, ev, label))
        self._live += 1
        return ev

    def schedule(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = PRIORITY_NORMAL,
        label: str = "",
    ) -> None:
        """Fire-and-forget fast path: no :class:`Event` handle is created.

        Use for events that are never cancelled (message deliveries); this
        skips the handle allocation entirely.
        """
        if self._owner is not None and get_ident() != self._owner:
            self._check_owner()
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time!r}")
        self._seq += 1
        self._insert((float(time), priority, self._seq, action, None, label))
        self._live += 1

    # ---------------------------------------------------------------- drain

    def pop_entry(self) -> Optional[Entry]:
        """Remove and return the earliest live entry, or ``None`` if empty."""
        if self._owner is not None and get_ident() != self._owner:
            self._check_owner()
        while True:
            cur = self._cur
            if cur is not None:
                idx = self._idx
                if idx < len(cur):
                    entry = cur[idx]
                    self._idx = idx + 1
                    ev = entry[4]
                    if ev is not None:
                        if ev.cancelled:
                            self._cancelled -= 1
                            continue
                        ev._queue = None
                    self._live -= 1
                    return entry
                self._cur = None
            if not self._keys:
                return None
            key = heappop(self._keys)
            bucket = self._buckets.pop(key)
            if len(bucket) > 1:
                bucket.sort()
            self._cur = bucket
            self._cur_key = key
            self._idx = 0

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty.

        Entries scheduled through the no-handle fast path are wrapped in a
        fresh (already-fired) :class:`Event` for API compatibility.
        """
        entry = self.pop_entry()
        if entry is None:
            return None
        ev = entry[4]
        if ev is None:
            ev = Event(entry[0], entry[1], entry[2], entry[3], entry[5])
        return ev

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event without removing it."""
        while True:
            cur = self._cur
            if cur is not None:
                idx = self._idx
                if idx < len(cur):
                    entry = cur[idx]
                    ev = entry[4]
                    if ev is not None and ev.cancelled:
                        # discard dead prefix permanently (seed behaviour)
                        self._idx = idx + 1
                        self._cancelled -= 1
                        continue
                    return entry[0]
                self._cur = None
            if not self._keys:
                return None
            key = heappop(self._keys)
            bucket = self._buckets.pop(key)
            if len(bucket) > 1:
                bucket.sort()
            self._cur = bucket
            self._cur_key = key
            self._idx = 0

    # ----------------------------------------------------------- compaction

    def _note_cancel(self) -> None:
        self._live -= 1
        self._cancelled += 1
        if self._cancelled > self.cancelled_peak:
            self.cancelled_peak = self._cancelled
        if (self._cancelled > COMPACT_MIN_CANCELLED
                and self._cancelled > self._live):
            self.compact()

    def compact(self) -> int:
        """Drop every cancelled entry from the queue; returns how many.

        Runs automatically once cancelled entries exceed
        :data:`COMPACT_MIN_CANCELLED` *and* outnumber live entries, so the
        queue's memory and sort costs track the live population, not the
        total ever scheduled.  Safe to call at any point between pops.
        """
        if not self._cancelled:
            return 0
        survivors: List[Entry] = []
        if self._cur is not None:
            survivors.extend(e for e in self._cur[self._idx:]
                             if e[4] is None or not e[4].cancelled)
            self._cur = None
        for bucket in self._buckets.values():
            survivors.extend(e for e in bucket
                             if e[4] is None or not e[4].cancelled)
        reclaimed = self._cancelled
        self._buckets = {}
        self._keys = []
        for entry in survivors:
            self._insert(entry)
        self._cancelled = 0
        self.compactions += 1
        self.cancelled_reclaimed += reclaimed
        return reclaimed

    # -------------------------------------------------------------- service

    def clear(self) -> None:
        if self._cur is not None:
            for entry in self._cur[self._idx:]:
                if entry[4] is not None:
                    entry[4]._queue = None
            self._cur = None
        for bucket in self._buckets.values():
            for entry in bucket:
                if entry[4] is not None:
                    entry[4]._queue = None
        self._buckets.clear()
        self._keys.clear()
        self._live = 0
        self._cancelled = 0

    def counters(self) -> dict[str, int]:
        """Kernel-health counters (see ``Scheduler.kernel_counters``)."""
        return {
            "timers_cancelled_pending": self.cancelled_peak,
            "queue_compactions": self.compactions,
            "queue_cancelled_reclaimed": self.cancelled_reclaimed,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"EventQueue(pending={len(self)}, "
                f"cancelled_pending={self._cancelled})")


def _never() -> None:  # pragma: no cover - placeholder action
    raise SimulationError("placeholder event should never fire")
