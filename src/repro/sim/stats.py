"""Run statistics: counters, gauges and time series.

The optimistic runtime and the baselines all report through one
:class:`Stats` object, so benchmark harnesses can print uniform rows
(messages sent, control messages, aborts, rollbacks, bytes of guard
overhead, completion time...).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Optional


class Stats:
    """Counter / series sink shared by a simulation run."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = defaultdict(int)
        self.series: dict[str, list[tuple[float, float]]] = defaultdict(list)

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name``."""
        self.counters[name] += amount

    def record(self, name: str, time: float, value: float) -> None:
        """Append ``(time, value)`` to series ``name``."""
        self.series[name].append((time, value))

    def get(self, name: str) -> int:
        """Value of counter ``name`` (0 if never incremented)."""
        return self.counters.get(name, 0)

    def series_values(self, name: str) -> list[float]:
        """Just the values of series ``name``, in record order."""
        return [v for _, v in self.series.get(name, [])]

    def merge(self, other: "Stats") -> None:
        """Fold another Stats object into this one."""
        for k, v in other.counters.items():
            self.counters[k] += v
        for k, pts in other.series.items():
            self.series[k].extend(pts)

    def snapshot(self, names: Optional[Iterable[str]] = None) -> dict[str, int]:
        """Plain-dict copy of (selected) counters, for assertions/printing."""
        if names is None:
            return dict(self.counters)
        return {n: self.counters.get(n, 0) for n in names}

    def perf(self, prefix: str = "snap.") -> dict[str, int]:
        """Counters under one namespace, sorted by name.

        The runtime's implementation-cost counters live under ``snap.*``
        (snapshots taken, deepcopy-equivalent full copies, bytes-equivalent
        nodes copied, deepcopy fallbacks); guard-tag traffic is
        ``opt.guard_tag_units``.  The wall-clock harness
        (``repro.bench.wallclock``) reads these to assert the copy count
        actually dropped.
        """
        return {
            k: v for k, v in sorted(self.counters.items())
            if k.startswith(prefix)
        }

    def full_copies(self) -> int:
        """Deepcopy-equivalent full state copies performed so far."""
        return self.counters.get("snap.full_copies", 0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Stats({dict(self.counters)!r})"
