"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figures``            regenerate all seven paper figures as ASCII diagrams
``scenario <id>``      run one scenario (fig2..fig7) and print its diagram
``profile <id>``       run one scenario traced; report + optional trace file
                       (``--wall`` re-runs it on a thread pool and prints
                       the dual-clock pool telemetry)
``explain <id>``       speculation forensics: provenance, abort attribution,
                       wasted work and the virtual-time critical path
                       (``--conflicts`` records access sets instead and
                       renders the WW/WR/RW conflict heatmap)
``sweep``              print the C1-style latency sweep table
``chaos``              randomized fault schedules against the hardened
                       runtime (``--smoke``, ``--seed N``, ``--check-only``)
``bench-parallel``     wall-clock speedup + cross-backend parity gates for
                       the real executor backends (``--smoke``,
                       ``--workers N``, ``--check-only``)
``lint <target>``      static analysis of programs and plans: scenario
                       names (fig1..fig7, chain, pipeline, random), paths,
                       or dotted modules (see docs/ANALYSIS.md)
``list``               list scenarios and experiments
"""

from __future__ import annotations

import argparse
import sys

from repro.trace.diagram import render_timeline
from repro.workloads import scenarios

PROTOCOL_KINDS = (
    "fork", "commit", "abort", "value_fault", "join_time_fault",
    "early_reply_time_fault", "cycle_abort", "precedence_sent",
    "rollback", "continuation", "committed_complete",
)

# Each builder takes an optional tracer and returns (result, processes);
# the ``profile`` command passes a recording tracer, everything else none.
SCENARIOS = {
    "fig2": ("Figure 2 — no call streaming",
             lambda tracer=None: (
                 scenarios.run_fig2_no_streaming(tracer=tracer),
                 ["X", "Y", "Z"])),
    "fig3": ("Figure 3 — successful call streaming",
             lambda tracer=None: (
                 scenarios.run_fig3_streaming(tracer=tracer).optimistic,
                 ["X", "Y", "Z"])),
    "fig4": ("Figure 4 — time fault",
             lambda tracer=None: (
                 scenarios.run_fig4_time_fault(tracer=tracer).optimistic,
                 ["X", "Y", "Z"])),
    "fig5": ("Figure 5 — value fault",
             lambda tracer=None: (
                 scenarios.run_fig5_value_fault(tracer=tracer).optimistic,
                 ["X", "Y", "Z"])),
    "fig6": ("Figure 6 — two optimistic threads, commit cascade",
             lambda tracer=None: (
                 scenarios.run_fig6_two_threads(tracer=tracer),
                 ["W", "X", "Z", "Y"])),
    "fig7": ("Figure 7 — mutual speculation cycle",
             lambda tracer=None: (
                 scenarios.run_fig7_cycle(tracer=tracer),
                 ["W", "X", "Z", "Y"])),
}


def _build_duplex_abort_heavy(tracer=None, backend=None, access=None):
    from repro.workloads.random_duplex import DuplexSpec, build_duplex_system

    spec = DuplexSpec(n_steps=6, n_signals=2, n_servers=2, seed=11,
                      wrong_guess_bias=2)
    system = build_duplex_system(spec, optimistic=True, tracer=tracer,
                                 backend=backend, access=access)
    return system.run(), ["A", "B"] + spec.server_names()


def _build_pipeline_fault(tracer=None, backend=None, access=None):
    from repro.workloads.pipelines import PipelineSpec, run_pipeline_optimistic

    spec = PipelineSpec(n_requests=4, depth=3, fail_request=1, relay=True)
    _system, result = run_pipeline_optimistic(spec, tracer=tracer,
                                              backend=backend, access=access)
    return result, ["client"] + spec.tier_names()


#: Scenarios whose builders thread an executor ``backend`` and an access
#: tracker through to the system — the ones ``profile --wall`` and
#: ``explain --conflicts`` accept.  The fig2..fig7 reproductions pin the
#: paper's virtual timelines and stay virtual-only.
DUAL_CLOCK_SCENARIOS = {
    "duplex_abort_heavy": (
        "Duplex abort-heavy — both sides speculative, 50% wrong guesses",
        _build_duplex_abort_heavy),
    "pipeline_fault": (
        "Relay pipeline, depth 3 — request 1 fails at tier 0",
        _build_pipeline_fault),
}


def _resolve(sid: str):
    """``(title, build)`` for any profile/explain scenario id, or None."""
    return SCENARIOS.get(sid) or DUAL_CLOCK_SCENARIOS.get(sid)


def _all_ids() -> str:
    return ", ".join(list(SCENARIOS) + list(DUAL_CLOCK_SCENARIOS))


def _show(sid: str) -> None:
    title, build = SCENARIOS[sid]
    result, processes = build()
    protocol_log = getattr(result, "protocol_log", ())
    print(render_timeline(result.trace, protocol_log, processes=processes,
                          protocol_kinds=PROTOCOL_KINDS,
                          title=f"{title}:"))
    print()


def cmd_figures(args: argparse.Namespace) -> int:
    for sid in SCENARIOS:
        _show(sid)
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    if args.id not in SCENARIOS:
        print(f"unknown scenario {args.id!r}; try: {', '.join(SCENARIOS)}",
              file=sys.stderr)
        return 2
    _show(args.id)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    entry = _resolve(args.id)
    if entry is None:
        print(f"unknown scenario {args.id!r}; try: {_all_ids()}",
              file=sys.stderr)
        return 2
    from repro.core.analysis import speculation_report
    from repro.obs.export import write_chrome_trace, write_jsonl_trace
    from repro.obs.tracer import RecordingTracer

    title, build = entry
    tracer = RecordingTracer()
    if args.wall:
        if args.id not in DUAL_CLOCK_SCENARIOS:
            print(f"--wall needs a pool-capable scenario; try: "
                  f"{', '.join(DUAL_CLOCK_SCENARIOS)}", file=sys.stderr)
            return 2
        from repro.exec.pool import ThreadPoolBackend
        from repro.obs.realtime import pool_report

        backend = ThreadPoolBackend(workers=args.workers,
                                    realize_scale=0.01)
        result, _processes = build(tracer=tracer, backend=backend)
    else:
        backend = None
        result, _processes = build(tracer=tracer)
    spans = result.spans
    print(speculation_report(result, title=f"{title}:"))
    print(f"  completion time: {result.completion_time}")
    print(f"  spans recorded:  {len(spans)}")
    if backend is not None:
        print()
        print(pool_report(spans, backend.wall_records).render())
    if args.format == "prometheus":
        from repro.obs.export import prometheus_text
        text = prometheus_text(result)
        if args.trace_out:
            with open(args.trace_out, "w") as fh:
                fh.write(text)
            print(f"  metrics written: {args.trace_out} (prometheus)")
        else:
            print(text, end="")
    elif args.trace_out:
        if args.format == "jsonl":
            write_jsonl_trace(spans, args.trace_out)
        else:
            write_chrome_trace(spans, args.trace_out)
        print(f"  trace written:   {args.trace_out} ({args.format})")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    entry = _resolve(args.id)
    if entry is None:
        print(f"unknown scenario {args.id!r}; try: {_all_ids()}",
              file=sys.stderr)
        return 2
    if args.conflicts:
        return _explain_conflicts(args, entry)
    from repro.obs.critical_path import critical_path
    from repro.obs.forensics import build_provenance
    from repro.obs.tracer import RecordingTracer

    title, build = entry
    tracer = RecordingTracer()
    result, _processes = build(tracer=tracer)
    graph = build_provenance(result)
    path = critical_path(result)
    print(f"{title}: speculation forensics")
    print()
    if args.guess:
        try:
            lines = graph.explain(args.guess)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        print("\n".join(lines))
    else:
        print("\n".join(graph.report_lines()))
        print()
        print("\n".join(path.lines()))
    if args.json:
        import json
        artifact = {
            "scenario": args.id,
            "title": title,
            "provenance": graph.to_dict(),
            "critical_path": path.to_dict(),
        }
        with open(args.json, "w") as fh:
            json.dump(artifact, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\njson artifact written: {args.json}")
    return 0


def _explain_conflicts(args: argparse.Namespace, entry) -> int:
    """``explain --conflicts``: access-set recording + WW/WR/RW heatmap."""
    if args.id not in DUAL_CLOCK_SCENARIOS:
        print(f"--conflicts needs an access-capable scenario; try: "
              f"{', '.join(DUAL_CLOCK_SCENARIOS)}", file=sys.stderr)
        return 2
    import json

    from repro.obs.access import AccessTracker, conflicts

    title, build = entry
    tracker = AccessTracker()
    build(access=tracker)
    matrix = conflicts(tracker.records)
    print(f"{title}: access-set conflict heatmap")
    print()
    print(matrix.render())
    out = args.json or f"conflicts_{args.id}.json"
    artifact = {
        "scenario": args.id,
        "title": title,
        "access": tracker.to_dict(),
        "conflicts": matrix.to_dict(),
    }
    with open(out, "w") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nconflict artifact written: {out}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.bench.harness import Table
    from repro.core.config import OptimisticConfig
    from repro.workloads.generators import (
        ChainSpec, run_chain_optimistic, run_chain_sequential,
    )

    table = Table(
        f"streaming speedup, N={args.calls} calls (fork_cost={args.fork_cost})",
        ["latency", "sequential", "optimistic", "speedup"],
    )
    for latency in (0.1, 0.5, 1.0, 5.0, 20.0, 100.0):
        spec = ChainSpec(n_calls=args.calls, n_servers=2, latency=latency,
                         service_time=0.5)
        seq = run_chain_sequential(spec)
        opt = run_chain_optimistic(
            spec, OptimisticConfig(fork_cost=args.fork_cost))
        table.add(latency, seq.makespan, opt.makespan,
                  seq.makespan / opt.makespan)
    print(table.render())
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.bench import chaos

    argv = []
    if args.smoke:
        argv.append("--smoke")
    if args.check_only:
        argv.append("--check-only")
    if args.seed is not None:
        argv.extend(["--seed", str(args.seed)])
    if args.exec_seed is not None:
        argv.extend(["--exec-seed", str(args.exec_seed)])
    if args.out is not None:
        argv.extend(["--out", args.out])
    return chaos.main(argv)


def cmd_bench_kernel(args: argparse.Namespace) -> int:
    from repro.bench import kernel

    argv = []
    if args.smoke:
        argv.append("--smoke")
    if args.check_only:
        argv.append("--check-only")
    if args.profile is not None:
        argv.append("--profile")
        if args.profile:
            argv.append(args.profile)
    if args.out is not None:
        argv.extend(["--out", args.out])
    return kernel.main(argv)


def cmd_bench_parallel(args: argparse.Namespace) -> int:
    from repro.bench import parallel

    argv = []
    if args.smoke:
        argv.append("--smoke")
    if args.check_only:
        argv.append("--check-only")
    if args.workers is not None:
        argv.extend(["--workers", str(args.workers)])
    if args.out is not None:
        argv.extend(["--out", args.out])
    return parallel.main(argv)


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analyze.cli import run_lint

    return run_lint(args)


def cmd_list(args: argparse.Namespace) -> int:
    print("scenarios (python -m repro scenario <id>):")
    for sid, (title, _) in SCENARIOS.items():
        print(f"  {sid:6s} {title}")
    print("\ndual-clock scenarios (profile --wall / explain --conflicts):")
    for sid, (title, _) in DUAL_CLOCK_SCENARIOS.items():
        print(f"  {sid:18s} {title}")
    print("\nexperiments: pytest benchmarks/ --benchmark-only "
          "(tables land in benchmarks/results/)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimistic parallelization of CSP (Bacon & Strom 1991)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("figures", help="render all paper figures").set_defaults(
        fn=cmd_figures)
    p_scn = sub.add_parser("scenario", help="run one figure scenario")
    p_scn.add_argument("id", help="fig2..fig7")
    p_scn.set_defaults(fn=cmd_scenario)
    p_prof = sub.add_parser(
        "profile", help="run one scenario with tracing and report on it")
    p_prof.add_argument("id", help="fig2..fig7, duplex_abort_heavy, "
                                   "pipeline_fault")
    p_prof.add_argument("--trace-out", default=None, metavar="FILE",
                        help="also export the span trace to FILE")
    p_prof.add_argument("--format", choices=("chrome", "jsonl", "prometheus"),
                        default="chrome",
                        help="trace file format, or 'prometheus' to dump "
                             "the run's metrics instead (default: chrome)")
    p_prof.add_argument("--wall", action="store_true",
                        help="run on a thread pool and print the dual-clock "
                             "pool telemetry (pool-capable scenarios only)")
    p_prof.add_argument("--workers", type=int, default=4, metavar="N",
                        help="thread-pool size for --wall (default: 4)")
    p_prof.set_defaults(fn=cmd_profile)
    p_exp = sub.add_parser(
        "explain", help="speculation forensics for one scenario")
    p_exp.add_argument("id", help="fig2..fig7, duplex_abort_heavy, "
                                  "pipeline_fault")
    p_exp.add_argument("--guess", default=None, metavar="ID",
                       help="explain one guess (e.g. X:i0.n0) instead of "
                            "the full report")
    p_exp.add_argument("--json", default=None, metavar="FILE",
                       help="also write the forensic artifact as JSON")
    p_exp.add_argument("--conflicts", action="store_true",
                       help="record access sets and render the WW/WR/RW "
                            "conflict heatmap (access-capable scenarios "
                            "only); writes conflicts_<id>.json unless "
                            "--json names the artifact")
    p_exp.set_defaults(fn=cmd_explain)
    p_sweep = sub.add_parser("sweep", help="latency sweep table")
    p_sweep.add_argument("--calls", type=int, default=10)
    p_sweep.add_argument("--fork-cost", type=float, default=0.0)
    p_sweep.set_defaults(fn=cmd_sweep)
    p_chaos = sub.add_parser(
        "chaos", help="fault-injection harness (see repro.bench.chaos)")
    p_chaos.add_argument("--smoke", action="store_true",
                         help="fast fixed-seed subset, no pin rewrite")
    p_chaos.add_argument("--check-only", action="store_true",
                         help="gate against the BENCH_chaos.json pin "
                              "without rewriting it")
    p_chaos.add_argument("--seed", type=int, default=None, metavar="N",
                         help="run a single fault schedule and print its row")
    p_chaos.add_argument("--exec-seed", type=int, default=None, metavar="N",
                         help="run a single executor-fault schedule and "
                              "print its row")
    p_chaos.add_argument("--out", default=None, metavar="FILE",
                         help="where to write the report JSON")
    p_chaos.set_defaults(fn=cmd_chaos)
    p_kern = sub.add_parser(
        "bench-kernel",
        help="simulator kernel throughput bench (see repro.bench.kernel)")
    p_kern.add_argument("--smoke", action="store_true",
                        help="fast tier (<=10s), no pin rewrite")
    p_kern.add_argument("--check-only", action="store_true",
                        help="gate against the BENCH_kernel.json pin "
                             "without rewriting it")
    p_kern.add_argument("--profile", nargs="?", const="", default=None,
                        metavar="FILE",
                        help="cProfile the tuned kernel workloads and print "
                             "the top-20 cumulative table")
    p_kern.add_argument("--out", default=None, metavar="FILE",
                        help="where to write the report JSON")
    p_kern.set_defaults(fn=cmd_bench_kernel)
    p_par = sub.add_parser(
        "bench-parallel",
        help="wall-clock parallelism bench (see repro.bench.parallel)")
    p_par.add_argument("--smoke", action="store_true",
                       help="tiny workload + 3 parity seeds, no pin rewrite")
    p_par.add_argument("--check-only", action="store_true",
                       help="gate against the BENCH_parallel.json pin "
                            "without rewriting it")
    p_par.add_argument("--workers", type=int, default=None, metavar="N",
                       help="thread-pool size for the speedup section")
    p_par.add_argument("--out", default=None, metavar="FILE",
                       help="where to write the report JSON")
    p_par.set_defaults(fn=cmd_bench_parallel)
    p_lint = sub.add_parser(
        "lint", help="statically analyze programs and plans")
    from repro.analyze.cli import configure_parser as configure_lint
    configure_lint(p_lint)
    p_lint.set_defaults(fn=cmd_lint)
    sub.add_parser("list", help="list scenarios").set_defaults(fn=cmd_list)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
