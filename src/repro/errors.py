"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """An internal invariant of the discrete-event simulator was violated."""


class ClockError(SimulationError):
    """Virtual time moved backwards or was otherwise misused."""


class NetworkError(SimulationError):
    """A message was routed to an unknown destination or a bad link."""


class ProgramError(ReproError):
    """A user program is malformed (bad effect, bad segment structure...)."""


class EffectError(ProgramError):
    """A segment yielded an effect that is invalid in its current context."""


class DeterminismError(ReproError):
    """Replay diverged from the original execution.

    Raised when re-executing a rolled-back thread produces a different
    sequence of effects than the logged original, which means the user
    program violated the determinism contract (its behaviour must be a pure
    function of its initial state and received values).
    """


class ProtocolError(ReproError):
    """The optimistic runtime reached a state forbidden by the protocol."""


class RollbackError(ProtocolError):
    """Rollback was requested to an unknown or already-committed point."""


class LivenessError(ProtocolError):
    """The run exceeded its configured bounds (e.g. scheduler step limit)."""


class TraceMismatchError(ReproError):
    """Observable traces of two executions were expected to match but did not."""
