"""Randomized program generation for property testing.

Chains exercise the streaming path; these programs exercise everything
else: data-dependent *branches* (segments skipped based on earlier
results), external emissions interleaved with speculation, one-way sends,
think time, and predictors that are only sometimes right.  Every generated
program satisfies the determinism and exports contracts by construction,
so the optimistic run must reproduce the sequential trace exactly — over
the whole random space.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.core import OptimisticSystem
from repro.core.config import OptimisticConfig
from repro.csp.effects import Call, Compute, Emit, Send
from repro.csp.plan import ForkSpec, ParallelizationPlan
from repro.csp.process import Program, Segment, server_program
from repro.csp.sequential import SequentialSystem
from repro.sim.network import FixedLatency

VALUE_DOMAIN = 5  # server replies are ints in [0, VALUE_DOMAIN)


def _det(seed: int, *parts: Any) -> int:
    """Deterministic pseudo-random int from (seed, parts)."""
    text = ":".join(str(p) for p in (seed,) + parts)
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass
class RandomProgramSpec:
    """Shape of one random client program."""

    n_segments: int = 5
    n_servers: int = 2
    latency: float = 4.0
    service_time: float = 0.5
    seed: int = 0
    branch_probability: float = 0.4   # segment conditioned on an earlier r
    emit_probability: float = 0.3
    send_probability: float = 0.2
    think_probability: float = 0.3
    guess_accuracy_bias: int = 2      # predictor guesses hash(...) % bias==0
                                      # branches right more often when small

    def server_names(self) -> List[str]:
        return [f"S{i}" for i in range(self.n_servers)]

    # ---------------------------------------------------------- randomness

    def _pick(self, *parts: Any) -> int:
        return _det(self.seed, *parts)

    def _prob(self, p: float, *parts: Any) -> bool:
        return (self._pick(*parts) % 1000) / 1000.0 < p

    def server_reply(self, server: str, op: str, args: Tuple) -> int:
        return _det(self.seed, "reply", server, op, args) % VALUE_DOMAIN


def build_random_client(spec: RandomProgramSpec) -> Tuple[Program,
                                                          ParallelizationPlan]:
    """Generate the client program and its (imperfect) streaming plan."""
    segments: List[Segment] = []
    plan = ParallelizationPlan()
    for i in range(spec.n_segments):
        export = f"r{i}"
        server = spec.server_names()[spec._pick("server", i)
                                     % spec.n_servers]
        has_branch = i > 0 and spec._prob(spec.branch_probability,
                                          "branch", i)
        branch_on = f"r{spec._pick('branchkey', i) % i}" if has_branch else None
        has_emit = spec._prob(spec.emit_probability, "emit", i)
        has_send = spec._prob(spec.send_probability, "send", i)
        think = (spec._pick("think", i) % 3) * 0.5 if spec._prob(
            spec.think_probability, "hasthink", i) else 0.0

        def body(state, _i=i, _export=export, _server=server,
                 _branch_on=branch_on, _emit=has_emit, _send=has_send,
                 _think=think):
            if _think:
                yield Compute(_think)
            taken = True
            if _branch_on is not None:
                taken = ((state.get(_branch_on) or 0) % 2 == 0)
            if taken:
                if _send:
                    yield Send(_server, "note", (f"n{_i}",))
                value = yield Call(_server, "op", (f"q{_i}",))
                state[_export] = value
                if _emit:
                    yield Emit("display", f"out{_i}:{value}")
            else:
                state[_export] = None

        segments.append(Segment(name=f"seg{i}", fn=body, exports=(export,)))

        if i < spec.n_segments - 1:
            # the guess: predict the branch from the (possibly guessed)
            # fork-point state and the server's deterministic reply —
            # except a seeded fraction of sites guess a wrong constant.
            guess_wrong = spec._pick("wrong", i) % spec.guess_accuracy_bias == 0
            expected = spec.server_reply(server, "op", (f"q{i}",))

            def predictor(state, _branch_on=branch_on, _expected=expected,
                          _wrong=guess_wrong, _export=export):
                taken = True
                if _branch_on is not None:
                    taken = ((state.get(_branch_on) or 0) % 2 == 0)
                if not taken:
                    return {_export: None}
                if _wrong:
                    return {_export: (_expected + 1) % VALUE_DOMAIN}
                return {_export: _expected}

            plan.add(f"seg{i}", ForkSpec(predictor=predictor))
    program = Program("client", segments)
    plan.validate(program)
    return program, plan


def build_random_system(spec: RandomProgramSpec, optimistic: bool,
                        config: Optional[OptimisticConfig] = None,
                        faults=None, backend=None, access=None):
    """Assemble the full system (client, servers, display sink).

    ``faults`` (a :class:`~repro.sim.faults.FaultPlan`) applies only to the
    optimistic assembly — the sequential reference always runs fault-free,
    which is exactly the equivalence the chaos harness asserts.
    ``backend`` (an :class:`~repro.exec.api.ExecutorBackend`) likewise only
    applies to the optimistic assembly; the parallel bench uses it to run
    the same seeded schedule on virtual time and on a real thread pool.
    ``access`` (an :class:`~repro.obs.access.AccessTracker`) records
    per-segment access sets on the optimistic assembly — the chaos
    harness audits them against the static effect sets.
    """
    program, plan = build_random_client(spec)

    def make_handler(name: str):
        def handler(state, req):
            if not req.is_call:
                state.setdefault("notes", []).append(req.args)
                return None
            return spec.server_reply(name, req.op, tuple(req.args))

        return handler

    if optimistic:
        system = OptimisticSystem(FixedLatency(spec.latency), config=config,
                                  faults=faults, backend=backend,
                                  access=access)
        system.add_program(program, plan)
    else:
        system = SequentialSystem(FixedLatency(spec.latency))
        system.add_program(program)
    for name in spec.server_names():
        system.add_program(server_program(name, make_handler(name),
                                          service_time=spec.service_time))
    system.add_sink("display")
    return system
