"""Duplex random workloads: two mutually speculative processes.

The chain and random-program generators fork only one client; these
workloads fork *both* sides of a producer/consumer pair, generalizing
Figures 6–7:

* process A streams calls to shared servers and, at seeded points, sends
  one-way *signals* to B;
* process B streams its own calls and, at matching points, *receives*
  those signals — with the receive segments themselves forked, guessing
  the signal's payload.

A's sends travel tagged with A's pending guesses, so B's guesses come to
depend on A's: the PRECEDENCE protocol, cross-process commit cascades,
guarded receives and (with wrong guesses on either side) distributed
rollback chains all get exercised over a random space.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.core import OptimisticSystem
from repro.core.config import OptimisticConfig
from repro.csp.effects import Call, Receive, Send
from repro.csp.plan import ForkSpec, ParallelizationPlan
from repro.csp.process import Program, Segment, server_program
from repro.csp.sequential import SequentialSystem
from repro.sim.network import FixedLatency

VALUE_DOMAIN = 4


def _det(seed: int, *parts: Any) -> int:
    text = ":".join(str(p) for p in (seed,) + parts)
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8],
                          "little")


@dataclass
class DuplexSpec:
    """Parameters of one duplex workload."""

    n_steps: int = 5             # segments per side
    n_signals: int = 2           # A->B signal/receive pairs (<= n_steps)
    n_servers: int = 2
    latency: float = 4.0
    service_time: float = 0.5
    seed: int = 0
    wrong_guess_bias: int = 3    # hash % bias == 0 -> predictor lies

    def __post_init__(self) -> None:
        self.n_signals = min(self.n_signals, self.n_steps)

    def signal_steps(self) -> List[int]:
        """Which step indices carry the signal exchange (deterministic)."""
        order = sorted(range(self.n_steps),
                       key=lambda i: _det(self.seed, "sigorder", i))
        return sorted(order[: self.n_signals])

    def signal_value(self, idx: int) -> int:
        return _det(self.seed, "sigval", idx) % VALUE_DOMAIN

    def server_reply(self, server: str, args: Tuple) -> int:
        return _det(self.seed, "reply", server, args) % VALUE_DOMAIN

    def guess_wrong(self, side: str, idx: int) -> bool:
        return _det(self.seed, "wrong", side, idx) % self.wrong_guess_bias == 0

    def server_names(self) -> List[str]:
        return [f"S{i}" for i in range(self.n_servers)]


def _build_side(spec: DuplexSpec, side: str) -> Tuple[Program,
                                                      ParallelizationPlan]:
    """One side's program: calls everywhere, signals at the marked steps."""
    signal_steps = set(spec.signal_steps())
    segments: List[Segment] = []
    plan = ParallelizationPlan()
    sig_counter = 0
    for i in range(spec.n_steps):
        export = f"r{i}"
        server = spec.server_names()[_det(spec.seed, side, "srv", i)
                                     % spec.n_servers]
        is_signal = i in signal_steps
        sig_idx = sig_counter if is_signal else None
        if is_signal:
            sig_counter += 1

        # NOTE: each signal uses a unique op ("sig0", "sig1", ...) so its
        # receive is unambiguous.  With a shared op, a rollback on A's side
        # can re-send signals in a different relative order than the
        # original speculative sends, and B's receives may consume them
        # swapped — legal under pure happens-before (the paper's criterion)
        # but not under the canonical FIFO sequential run this test
        # compares against.  See docs/PROTOCOL.md, "ordering of one-way
        # sends across speculative threads".
        if side == "A":
            def body(state, _i=i, _server=server, _sig=is_signal,
                     _sigidx=sig_idx, _export=export):
                if _sig:
                    yield Send("B", f"sig{_sigidx}",
                               (_sigidx, spec.signal_value(_sigidx)))
                value = yield Call(_server, "op", (f"{side}q{_i}",))
                state[_export] = value

            expected = spec.server_reply(server, (f"{side}q{i}",))
        else:
            def body(state, _i=i, _server=server, _sig=is_signal,
                     _sigidx=sig_idx, _export=export):
                if _sig:
                    req = yield Receive(ops=(f"sig{_sigidx}",))
                    value = req.args[1]
                else:
                    value = yield Call(_server, "op", (f"{side}q{_i}",))
                state[_export] = value

            expected = (spec.signal_value(sig_idx) if is_signal
                        else spec.server_reply(server, (f"{side}q{i}",)))

        segments.append(Segment(name=f"{side}{i}", fn=body,
                                exports=(export,)))
        if i < spec.n_steps - 1:
            wrong = spec.guess_wrong(side, i)
            guess = ((expected + 1) % VALUE_DOMAIN) if wrong else expected
            plan.add(f"{side}{i}", ForkSpec(predictor={export: guess}))
    program = Program(side, segments)
    plan.validate(program)
    return program, plan


def build_duplex_system(spec: DuplexSpec, optimistic: bool,
                        config: Optional[OptimisticConfig] = None,
                        tracer=None, backend=None, access=None):
    """Assemble both sides plus the shared servers.

    ``tracer`` (optimistic mode only) enables span tracing for the run;
    ``backend`` selects the executor substrate and ``access`` attaches an
    access-set recorder (:class:`repro.obs.access.AccessTracker`).
    """
    prog_a, plan_a = _build_side(spec, "A")
    prog_b, plan_b = _build_side(spec, "B")

    def make_handler(name: str):
        def handler(state, req):
            return spec.server_reply(name, tuple(req.args))

        return handler

    if optimistic:
        system = OptimisticSystem(FixedLatency(spec.latency), config=config,
                                  tracer=tracer, backend=backend,
                                  access=access)
        system.add_program(prog_a, plan_a)
        system.add_program(prog_b, plan_b)
    else:
        system = SequentialSystem(FixedLatency(spec.latency))
        system.add_program(prog_a)
        system.add_program(prog_b)
    for name in spec.server_names():
        system.add_program(server_program(name, make_handler(name),
                                          service_time=spec.service_time))
    return system
