"""Workloads: canonical figure scenarios and synthetic generators.

The scenario builders are shared by the integration tests, the examples and
the benchmark harness so that "Figure 4" means exactly one thing everywhere
in the repository.
"""

from repro.workloads.scenarios import (
    ScenarioResult,
    fig1_programs,
    fig6_programs,
    fig7_programs,
    run_fig2_no_streaming,
    run_fig3_streaming,
    run_fig4_time_fault,
    run_fig5_value_fault,
    run_fig6_two_threads,
    run_fig7_cycle,
    run_update_write,
)
from repro.workloads.generators import (
    chain_workload,
    random_chain_spec,
    run_chain_optimistic,
    run_chain_sequential,
    unreliable_server,
)
from repro.workloads.pipelines import (
    PipelineSpec,
    build_pipeline,
    run_pipeline_optimistic,
    run_pipeline_sequential,
)

__all__ = [
    "ScenarioResult",
    "fig1_programs",
    "fig6_programs",
    "fig7_programs",
    "run_update_write",
    "run_fig2_no_streaming",
    "run_fig3_streaming",
    "run_fig4_time_fault",
    "run_fig5_value_fault",
    "run_fig6_two_threads",
    "run_fig7_cycle",
    "chain_workload",
    "random_chain_spec",
    "run_chain_sequential",
    "run_chain_optimistic",
    "unreliable_server",
    "PipelineSpec",
    "build_pipeline",
    "run_pipeline_sequential",
    "run_pipeline_optimistic",
]
