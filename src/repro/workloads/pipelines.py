"""Nested-service pipeline workloads.

A client calls the first tier; each tier services a request by calling
the next tier before replying (the Fig. 4 topology generalized to depth
D).  Speculative guards propagate down the whole chain — request k's
guard rides through every tier — making these the hardest workloads for
guard bookkeeping, rollback cascades and commit propagation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core import OptimisticSystem, make_call_chain, stream_plan
from repro.core.config import OptimisticConfig
from repro.csp.effects import Call, Send
from repro.csp.process import Program, server_program
from repro.csp.sequential import SequentialSystem
from repro.sim.network import FixedLatency, LatencyModel


@dataclass
class PipelineSpec:
    """Parameters of one nested-pipeline workload.

    Two tier styles:

    * ``relay=False`` (nested calls): each tier *calls* the next and only
      replies when the deep chain returns.  Single-threaded tiers then
      serialize whole round trips — speculation helps only modestly, an
      honest negative result the C9 table shows.
    * ``relay=True``: each tier replies immediately and forwards the work
      one-way to the next tier.  Speculative requests (and their guards)
      cascade down every tier, and a failure rolls the whole depth back.
    """

    n_requests: int = 4       # calls the client streams at tier 0
    depth: int = 3            # number of service tiers
    latency: float = 3.0     # tier-to-tier (and default) latency
    client_latency: Optional[float] = None  # client<->T0 links (default same)
    service_time: float = 0.5
    fail_request: Optional[int] = None   # index whose tier-0 reply is False
    relay: bool = False

    def tier_names(self) -> List[str]:
        return [f"T{i}" for i in range(self.depth)]

    def latency_model(self) -> LatencyModel:
        if self.client_latency is None:
            return FixedLatency(self.latency)
        from repro.sim.network import PerLinkLatency

        model = PerLinkLatency(default=self.latency)
        for name in self.tier_names() + ["client"]:
            model.set("client", name, self.client_latency)
            model.set(name, "client", self.client_latency)
        return model

    def _fails(self, args: Tuple) -> bool:
        return (self.fail_request is not None
                and args[0] == f"req{self.fail_request}")


def build_pipeline(spec: PipelineSpec) -> Tuple[Program, List[Program]]:
    """Client program + one server program per tier."""
    calls = [("T0", "op", (f"req{i}",)) for i in range(spec.n_requests)]
    client = make_call_chain("client", calls, stop_on_failure=True,
                             failure_value=False)
    tiers: List[Program] = []
    names = spec.tier_names()
    for level, name in enumerate(names):
        nxt = names[level + 1] if level + 1 < len(names) else None
        if nxt is not None and not spec.relay:
            def handler(state, req, _nxt=nxt, _level=level, _spec=spec):
                deeper = yield Call(_nxt, "op", req.args)
                ok = deeper and not (_level == 0 and _spec._fails(req.args))
                state.setdefault("served", []).append(req.args[0])
                return ok
        elif nxt is not None:
            def handler(state, req, _nxt=nxt, _level=level, _spec=spec):
                yield Send(_nxt, "op", req.args)
                state.setdefault("served", []).append(req.args[0])
                return not (_level == 0 and _spec._fails(req.args))
        else:
            def handler(state, req, _level=level, _spec=spec):
                state.setdefault("served", []).append(req.args[0])
                return not (_level == 0 and _spec._fails(req.args))
        tiers.append(server_program(name, handler,
                                    service_time=spec.service_time))
    return client, tiers


def run_pipeline_sequential(spec: PipelineSpec):
    client, tiers = build_pipeline(spec)
    system = SequentialSystem(spec.latency_model())
    system.add_program(client)
    for t in tiers:
        system.add_program(t)
    return system.run()


def run_pipeline_optimistic(spec: PipelineSpec,
                            config: Optional[OptimisticConfig] = None,
                            tracer=None, backend=None, access=None):
    client, tiers = build_pipeline(spec)
    system = OptimisticSystem(spec.latency_model(), config=config,
                              tracer=tracer, backend=backend, access=access)
    system.add_program(client, stream_plan(client))
    for t in tiers:
        system.add_program(t)
    return system, system.run()
