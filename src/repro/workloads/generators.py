"""Synthetic workload generators for sweeps and property tests.

The central shape is the *call chain*: a client issuing N dependent calls
against one or more servers, the paper's call-streaming workload.  Servers
can be made unreliable with a seeded per-request failure probability, which
drives the abort-probability sweep (experiment C2).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.core import OptimisticSystem, make_call_chain, stream_plan
from repro.core.config import OptimisticConfig
from repro.core.system import OptimisticResult
from repro.csp.process import Program, server_program
from repro.csp.sequential import SequentialResult, SequentialSystem
from repro.sim.network import FixedLatency


def _request_fails(seed: int, server: str, key: str, p_fail: float) -> bool:
    """Deterministic per-request failure decision.

    Hashing (seed, server, request key) keeps the *same requests* failing
    in the sequential and optimistic runs — and across rollback-driven
    re-deliveries — so their traces stay comparable.
    """
    if p_fail <= 0.0:
        return False
    if p_fail >= 1.0:
        return True
    digest = hashlib.sha256(f"{seed}:{server}:{key}".encode()).digest()
    draw = int.from_bytes(digest[:8], "little") / float(2 ** 64)
    return draw < p_fail


def unreliable_server(
    name: str,
    *,
    service_time: float = 1.0,
    p_fail: float = 0.0,
    seed: int = 0,
) -> Program:
    """A request/reply server that fails a seeded fraction of requests.

    Failure means replying ``False`` (the value the chain's streaming plan
    never guesses), triggering a value fault in the optimistic run.
    The failure decision keys on the request *payload*, not arrival order,
    so retries/rollbacks see consistent outcomes.
    """
    def handler(state, req):
        key = f"{req.op}:{tuple(req.args)!r}"
        ok = not _request_fails(seed, name, key, p_fail)
        if ok:
            state.setdefault("served", []).append((req.op,) + tuple(req.args))
        return ok

    return server_program(name, handler, service_time=service_time)


@dataclass
class ChainSpec:
    """Parameters of one call-chain workload."""

    n_calls: int = 10
    n_servers: int = 2
    latency: float = 5.0
    service_time: float = 1.0
    compute_between: float = 0.0
    p_fail: float = 0.0
    seed: int = 0
    stop_on_failure: bool = True

    def server_names(self) -> List[str]:
        return [f"S{i}" for i in range(self.n_servers)]

    def calls(self) -> List[Tuple[str, str, Tuple[Any, ...]]]:
        names = self.server_names()
        return [
            (names[i % len(names)], "op", (f"req{i}",))
            for i in range(self.n_calls)
        ]


def chain_workload(spec: ChainSpec) -> Tuple[Program, List[Program]]:
    """Build the client program and server programs for ``spec``."""
    client = make_call_chain(
        "client",
        spec.calls(),
        compute_between=spec.compute_between,
        stop_on_failure=spec.stop_on_failure,
        failure_value=False,
    )
    servers = [
        unreliable_server(
            name,
            service_time=spec.service_time,
            p_fail=spec.p_fail,
            seed=spec.seed,
        )
        for name in spec.server_names()
    ]
    return client, servers


def run_chain_sequential(spec: ChainSpec) -> SequentialResult:
    client, servers = chain_workload(spec)
    system = SequentialSystem(FixedLatency(spec.latency))
    system.add_program(client)
    for s in servers:
        system.add_program(s)
    return system.run()


def run_chain_optimistic(
    spec: ChainSpec,
    config: Optional[OptimisticConfig] = None,
    tracer=None,
) -> OptimisticResult:
    client, servers = chain_workload(spec)
    system = OptimisticSystem(FixedLatency(spec.latency), config=config,
                              tracer=tracer)
    system.add_program(client, stream_plan(client))
    for s in servers:
        system.add_program(s)
    return system.run()


def random_chain_spec(rng: np.random.Generator) -> ChainSpec:
    """Draw a random-but-sane chain spec (used by property tests)."""
    return ChainSpec(
        n_calls=int(rng.integers(1, 8)),
        n_servers=int(rng.integers(1, 4)),
        latency=float(rng.uniform(0.5, 10.0)),
        service_time=float(rng.uniform(0.0, 3.0)),
        compute_between=float(rng.uniform(0.0, 2.0)),
        p_fail=float(rng.choice([0.0, 0.2, 0.5, 1.0])),
        seed=int(rng.integers(0, 2 ** 31)),
    )
