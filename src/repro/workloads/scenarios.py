"""The paper's figure scenarios as reusable builders.

Figure 1's program (`OK = Update(Item, Value); if OK: Write(File, line)`)
is the running example of the whole paper; Figures 2–5 are executions of it
under different interpreters and fault conditions, and Figures 6–7 are the
two-mutually-optimistic-processes executions of the PRECEDENCE protocol.

Every ``run_*`` helper returns a :class:`ScenarioResult` bundling the
sequential reference run and (where applicable) the optimistic run, so
callers can assert both the timings and Theorem-1 trace equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core import OptimisticSystem, make_call_chain, stream_plan
from repro.core.config import OptimisticConfig
from repro.core.system import OptimisticResult
from repro.csp.plan import ForkSpec, ParallelizationPlan
from repro.csp.process import Program, Segment, server_program
from repro.csp.sequential import SequentialResult, SequentialSystem
from repro.csp.effects import Call, Receive, Send
from repro.sim.network import FixedLatency, LatencyModel, PerLinkLatency


@dataclass
class ScenarioResult:
    """A paired sequential/optimistic execution of one scenario."""

    sequential: Optional[SequentialResult]
    optimistic: Optional[OptimisticResult]

    @property
    def speedup(self) -> float:
        """Sequential makespan over optimistic committed makespan."""
        assert self.sequential is not None and self.optimistic is not None
        if self.optimistic.makespan == 0:
            return float("inf")
        return self.sequential.makespan / self.optimistic.makespan


# --------------------------------------------------------------------------
# Figure 1: the Update/Write program and its servers.
# --------------------------------------------------------------------------

UPDATE_WRITE_CALLS = [
    ("Y", "Update", ("item", 1)),
    ("Z", "Write", ("file", "did it")),
]


def fig1_programs(
    *,
    update_ok: bool = True,
    service_time: float = 1.0,
    nested_log: bool = False,
) -> Tuple[Program, Program, Program]:
    """Build (client X, database server Y, filesystem server Z).

    ``update_ok=False`` makes the Update call fail (the Fig. 5 value
    fault).  ``nested_log=True`` makes Y itself call Z while servicing the
    Update (the Fig. 4 topology, where a latency skew can produce a time
    fault).
    """
    client = make_call_chain(
        "X", UPDATE_WRITE_CALLS, stop_on_failure=True, failure_value=False
    )

    if nested_log:
        def db_handler(state, req):
            yield Call("Z", "WriteLog", (req.args[0],))
            if update_ok:
                state.setdefault("db", {})[req.args[0]] = req.args[1]
            return update_ok
    else:
        def db_handler(state, req):
            if update_ok:
                state.setdefault("db", {})[req.args[0]] = req.args[1]
            return update_ok

    def fs_handler(state, req):
        state.setdefault("log", []).append((req.op,) + tuple(req.args))
        return True

    db = server_program("Y", db_handler, service_time=service_time)
    fs = server_program("Z", fs_handler, service_time=service_time)
    return client, db, fs


def run_update_write(
    *,
    optimistic: bool,
    latency: Optional[LatencyModel] = None,
    update_ok: bool = True,
    nested_log: bool = False,
    service_time: float = 1.0,
    config: Optional[OptimisticConfig] = None,
    tracer=None,
):
    """One execution of the Fig. 1 program under either interpreter."""
    latency = latency or FixedLatency(5.0)
    client, db, fs = fig1_programs(
        update_ok=update_ok, service_time=service_time, nested_log=nested_log
    )
    if optimistic:
        system = OptimisticSystem(latency, config=config, tracer=tracer)
        system.add_program(client, stream_plan(client))
    else:
        system = SequentialSystem(latency, tracer=tracer)
        system.add_program(client)
    system.add_program(db)
    system.add_program(fs)
    return system.run()


# --------------------------------------------------------------------------
# Figures 2–5.
# --------------------------------------------------------------------------

def run_fig2_no_streaming(latency: float = 5.0,
                          service_time: float = 1.0,
                          tracer=None) -> SequentialResult:
    """Fig. 2: the blocking execution — each call waits out a round trip."""
    return run_update_write(
        optimistic=False, latency=FixedLatency(latency),
        service_time=service_time, tracer=tracer,
    )


def run_fig3_streaming(latency: float = 5.0, service_time: float = 1.0,
                       config: Optional[OptimisticConfig] = None,
                       tracer=None) -> ScenarioResult:
    """Fig. 3: successful call streaming; both calls overlap.

    ``tracer`` (here and in the other figure builders) traces the
    *optimistic* run; the sequential reference stays untraced so the
    spans on each result are unambiguous.
    """
    seq = run_update_write(
        optimistic=False, latency=FixedLatency(latency),
        service_time=service_time,
    )
    opt = run_update_write(
        optimistic=True, latency=FixedLatency(latency),
        service_time=service_time, config=config, tracer=tracer,
    )
    return ScenarioResult(sequential=seq, optimistic=opt)


def run_fig4_time_fault(
    *,
    fast: float = 2.0,
    slow: float = 10.0,
    service_time: float = 1.0,
    config: Optional[OptimisticConfig] = None,
    tracer=None,
) -> ScenarioResult:
    """Fig. 4: X's speculative call to Z beats Y's causally-earlier one.

    Y services Update by calling Z; the X→Z link is ``fast`` while Y→Z is
    ``slow``, so Z consumes the speculative Write first — a happens-before
    cycle the protocol must detect and repair.
    """
    latency = PerLinkLatency(default=fast, links={("Y", "Z"): slow})
    seq = run_update_write(optimistic=False, latency=latency, nested_log=True,
                           service_time=service_time)
    opt = run_update_write(optimistic=True, latency=latency, nested_log=True,
                           service_time=service_time, config=config,
                           tracer=tracer)
    return ScenarioResult(sequential=seq, optimistic=opt)


def run_fig5_value_fault(latency: float = 5.0, service_time: float = 1.0,
                         config: Optional[OptimisticConfig] = None,
                         tracer=None) -> ScenarioResult:
    """Fig. 5: the Update fails, so the guessed ``OK = True`` is wrong."""
    seq = run_update_write(optimistic=False, latency=FixedLatency(latency),
                           update_ok=False, service_time=service_time)
    opt = run_update_write(optimistic=True, latency=FixedLatency(latency),
                           update_ok=False, service_time=service_time,
                           config=config, tracer=tracer)
    return ScenarioResult(sequential=seq, optimistic=opt)


# --------------------------------------------------------------------------
# Figures 6–7: two mutually optimistic processes.
# --------------------------------------------------------------------------

def _recv_one(state):
    req = yield Receive()
    state["v"] = req.args[0]


def fig6_programs() -> Dict[str, Tuple[Program,
                                       Optional[ParallelizationPlan]]]:
    """The four Fig. 6 processes as (program, plan) pairs, unassembled.

    Shared by :func:`run_fig6_two_threads` and the static analyzer
    (:mod:`repro.analyze`), so "Figure 6" means one thing everywhere.
    """
    def x_s1(state):
        state["r"] = yield Call("W", "work", ())

    def x_s2(state):
        yield Send("Z", "M1", (state["r"],))

    prog_x = Program("X", [Segment("s1", x_s1, exports=("r",)),
                           Segment("s2", x_s2)])
    plan_x = ParallelizationPlan().add("s1", ForkSpec(predictor={"r": 42}))

    def z_s2(state):
        yield Send("Y", "M2", (state["v"],))

    prog_z = Program("Z", [Segment("s1", _recv_one, exports=("v",)),
                           Segment("s2", z_s2)])
    plan_z = ParallelizationPlan().add("s1", ForkSpec(predictor={"v": 42}))

    def worker(state, req):
        return 42

    def sink_server(state, req):
        state.setdefault("got", []).append(tuple(req.args))
        return None

    return {
        "X": (prog_x, plan_x),
        "Z": (prog_z, plan_z),
        "W": (server_program("W", worker, service_time=1.0), None),
        "Y": (server_program("Y", sink_server), None),
    }


def run_fig6_two_threads(latency: float = 3.0,
                         config: Optional[OptimisticConfig] = None,
                         tracer=None) -> OptimisticResult:
    """Fig. 6: X and Z are both forked; z1's fate hangs on x1 via PRECEDENCE.

    X's S1 calls W; X's S2 sends M1 to Z.  Z's S1 receives M1 (acquiring
    {x1}); Z's S2 sends M2 to Y.  x1 commits cleanly; the commit cascades
    through the PRECEDENCE wait and commits z1 too.
    """
    system = OptimisticSystem(FixedLatency(latency), config=config,
                              tracer=tracer)
    for program, plan in fig6_programs().values():
        system.add_program(program, plan)
    return system.run()


def fig7_programs() -> Dict[str, Tuple[Program,
                                       Optional[ParallelizationPlan]]]:
    """The four Fig. 7 processes as (program, plan) pairs, unassembled.

    This is the paper's deliberately-doomed plan (the X ↔ Z speculation
    cycle); the static analyzer's SA202 rule flags it, which is exactly
    why the analyzer's smoke corpus uses it as a true positive.
    """
    def x_s2(state):
        yield Call("W", "log", (state["v"],))
        yield Send("Z", "M2", (state["v"],))

    def z_s2(state):
        yield Call("Y", "log", (state["v"],))
        yield Send("X", "M1", (state["v"],))

    prog_x = Program("X", [Segment("s1", _recv_one, exports=("v",)),
                           Segment("s2", x_s2)])
    prog_z = Program("Z", [Segment("s1", _recv_one, exports=("v",)),
                           Segment("s2", z_s2)])

    def logger(state, req):
        state.setdefault("got", []).append(tuple(req.args))
        return True

    return {
        "X": (prog_x, ParallelizationPlan().add(
            "s1", ForkSpec(predictor={"v": 7}))),
        "Z": (prog_z, ParallelizationPlan().add(
            "s1", ForkSpec(predictor={"v": 7}))),
        "W": (server_program("W", logger, service_time=1.0), None),
        "Y": (server_program("Y", logger, service_time=1.0), None),
    }


def run_fig7_cycle(latency: float = 3.0,
                   config: Optional[OptimisticConfig] = None,
                   until: float = 500.0,
                   tracer=None) -> OptimisticResult:
    """Fig. 7: the symmetric version — x1 → z1 → x1 is a causal cycle.

    Each left thread receives the *other* process's speculative send, so
    the PRECEDENCE exchange discovers the cycle and both guesses abort.
    The underlying sequential program deadlocks (each S1 waits on the other
    side's S2), so after the aborts the system correctly quiesces without
    committing — the optimistic execution must not "succeed" where the
    sequential semantics cannot.
    """
    system = OptimisticSystem(FixedLatency(latency), config=config,
                              tracer=tracer)
    for program, plan in fig7_programs().values():
        system.add_program(program, plan)
    return system.run(until=until)
