"""Ablation A5 — reclamation of resolved speculation state.

§3.2: a committing computation "discards any state it created for purposes
of rolling back".  A long-running server's journal otherwise grows with
every request it ever served; periodic fossil collection (journal
truncation for dead threads, checkpoint compaction for re-entrant server
loops) keeps the footprint flat without changing behaviour.
"""

from repro.bench import Table, emit
from repro.core import OptimisticSystem, stream_plan
from repro.core.gc import collect_all, retained_footprint
from repro.sim.network import FixedLatency
from repro.trace import assert_equivalent
from repro.workloads.generators import ChainSpec, chain_workload


def run(n_calls: int, collect_every=None):
    spec = ChainSpec(n_calls=n_calls, n_servers=2, latency=5.0,
                     service_time=0.2, p_fail=0.2, seed=5)
    client, servers = chain_workload(spec)
    system = OptimisticSystem(FixedLatency(spec.latency))
    system.add_program(client, stream_plan(client))
    for s in servers:
        system.add_program(s)
    peak = {"journal_slots": 0, "threads": 0, "records": 0}
    if collect_every is not None:
        system.start()
        t = 0.0
        while system.scheduler.queue.peek_time() is not None:
            t += collect_every
            system.scheduler.run(until=t)
            collect_all(system)
            foot = retained_footprint(system)
            for key in peak:
                peak[key] = max(peak[key], foot[key])
    result = system.run()
    foot = retained_footprint(system)
    for key in peak:
        peak[key] = max(peak[key], foot[key])
    return system, result, peak


def test_a5_gc(benchmark):
    table = Table(
        "A5: retained speculation state with and without fossil collection",
        ["N calls", "GC", "peak journal slots", "final journal slots",
         "final threads", "final records"],
    )
    for n_calls in [10, 40, 80]:
        sys_off, res_off, _ = run(n_calls)
        foot_off = retained_footprint(sys_off)
        sys_on, res_on, peak_on = run(n_calls, collect_every=5.0)
        foot_on = retained_footprint(sys_on)
        assert_equivalent(res_on.trace, res_off.trace)
        assert res_on.makespan == res_off.makespan
        table.add(n_calls, "off", foot_off["journal_slots"],
                  foot_off["journal_slots"], foot_off["threads"],
                  foot_off["records"])
        table.add(n_calls, "on", peak_on["journal_slots"],
                  foot_on["journal_slots"], foot_on["threads"],
                  foot_on["records"])
    # GC keeps the retained footprint far below the uncollected run
    sys_off, _, _ = run(80)
    sys_on, _, _ = run(80, collect_every=5.0)
    assert (retained_footprint(sys_on)["journal_slots"]
            < retained_footprint(sys_off)["journal_slots"] / 4)
    table.note("identical traces and makespans; collection only reclaims "
               "state the protocol can never consult again")
    emit(table, "a5_gc.txt")

    benchmark(lambda: run(40, collect_every=5.0))
