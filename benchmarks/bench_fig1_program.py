"""Experiment F1 — Figure 1: the Update/Write program itself.

Runs the paper's running example under both interpreters and reports the
end-to-end event timeline, verifying the optimistic run commits the exact
same observable trace.
"""

from repro.bench import Table, emit
from repro.trace import assert_equivalent
from repro.workloads.scenarios import run_update_write


def test_fig1_program(benchmark):
    seq = run_update_write(optimistic=False)
    opt = run_update_write(optimistic=True)
    assert_equivalent(opt.trace, seq.trace)

    table = Table(
        "F1: Figure 1 program (OK = Update(); if OK: Write())",
        ["system", "makespan", "forks", "commits", "aborts", "msgs(data)",
         "msgs(ctrl)"],
    )
    table.add("pessimistic", seq.makespan, 0, 0, 0,
              seq.stats.get("net.msgs.data"), seq.stats.get("net.msgs.control"))
    table.add("optimistic", opt.makespan, opt.stats.get("opt.forks"),
              opt.stats.get("opt.commits"), opt.stats.get("opt.aborts"),
              opt.stats.get("net.msgs.data"), opt.stats.get("net.msgs.control"))
    table.note("latency=5, service=1; traces verified equivalent (Theorem 1)")
    emit(table, "f1_program.txt")

    benchmark(lambda: run_update_write(optimistic=True))
