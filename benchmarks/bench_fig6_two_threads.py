"""Experiment F6 — Figure 6: two optimistic processes, commit cascade.

Z's guess z1 depends on X's x1; the PRECEDENCE protocol resolves the wait
and COMMIT(x1) cascades into COMMIT(z1) one broadcast latency later.
"""

from repro.bench import Table, emit
from repro.workloads.scenarios import run_fig6_two_threads


def test_fig6_two_threads(benchmark):
    table = Table(
        "F6: Figure 6 — two optimistic threads, PRECEDENCE then cascade",
        ["latency", "x1 commit t", "z1 commit t", "cascade delay",
         "precedence msgs", "aborts"],
    )
    for latency in [1.0, 3.0, 6.0, 12.0]:
        res = run_fig6_two_threads(latency=latency)
        x_commit = [e for e in res.events("commit", "X")][0]["time"]
        z_commit = [e for e in res.events("commit", "Z")][0]["time"]
        table.add(
            latency,
            x_commit,
            z_commit,
            z_commit - x_commit,
            res.stats.get("opt.precedence_sent"),
            res.stats.get("opt.aborts"),
        )
        assert z_commit - x_commit == latency  # one broadcast hop
    table.note("z1 commits exactly one control-broadcast latency after x1")
    emit(table, "f6_two_threads.txt")

    benchmark(lambda: run_fig6_two_threads(latency=3.0))
