"""Experiment F5 — Figure 5: value fault, abort and re-execution.

The Update fails so the guessed OK=True aborts; Z rolls back and re-reads
nothing (the speculative Write is an orphan); the continuation skips the
Write exactly like the sequential run.
"""

from repro.bench import Table, emit
from repro.trace import assert_equivalent
from repro.workloads.scenarios import run_fig5_value_fault


def test_fig5_value_fault(benchmark):
    table = Table(
        "F5: Figure 5 — value fault (guessed OK=True, actual False)",
        ["latency", "sequential", "optimistic", "value faults",
         "continuations", "Z rollbacks", "emissions dropped"],
    )
    for latency in [2.0, 5.0, 10.0, 25.0]:
        res = run_fig5_value_fault(latency=latency)
        assert_equivalent(res.optimistic.trace, res.sequential.trace)
        opt = res.optimistic
        table.add(
            latency,
            res.sequential.makespan,
            opt.makespan,
            opt.stats.get("opt.aborts.value_fault"),
            opt.stats.get("opt.continuations"),
            opt.count("rollback", "Z"),
            opt.stats.get("opt.emissions_dropped"),
        )
    table.note("the fault is discovered when the reply lands, so this shape "
               "costs nothing extra over sequential")
    emit(table, "f5_value_fault.txt")

    benchmark(lambda: run_fig5_value_fault(latency=5.0))
