"""Experiment C11 — the anatomy of speculation under increasing fault rates.

Uses the protocol-log analysis tools to expose the quantities the paper
reasons about informally: how deep speculation runs, how long guesses stay
in doubt, and how large the abort cascades get as guesses degrade.
"""

import numpy as np

from repro.bench import Table, emit
from repro.core.analysis import summarize
from repro.workloads.generators import ChainSpec, run_chain_optimistic


def run_point(p_fail: float, seeds=range(5)):
    summaries = []
    for seed in seeds:
        spec = ChainSpec(n_calls=10, n_servers=2, latency=5.0,
                         service_time=0.5, p_fail=p_fail, seed=seed)
        res = run_chain_optimistic(spec)
        summaries.append(summarize(res.protocol_log))
    return summaries


def test_c11_speculation_anatomy(benchmark):
    table = Table(
        "C11: speculation anatomy vs fault rate (10-call chain, 5 seeds)",
        ["p_fail", "forks/run", "aborts/run", "max depth",
         "mean doubt time", "largest cascade"],
    )
    depths = {}
    for p_fail in [0.0, 0.2, 0.5, 0.8]:
        summaries = run_point(p_fail)
        table.add(
            p_fail,
            float(np.mean([s.forks for s in summaries])),
            float(np.mean([s.aborts for s in summaries])),
            max(s.max_depth for s in summaries),
            float(np.mean([s.mean_doubt_time for s in summaries])),
            max(s.largest_cascade for s in summaries),
        )
        depths[p_fail] = max(s.max_depth for s in summaries)
    # fault-free runs speculate to the full chain depth
    assert depths[0.0] == 9
    # a failure truncates speculation, so cascades appear
    high = run_point(0.8)
    assert max(s.largest_cascade for s in high) >= 2
    table.note("max depth = outstanding guesses at once; a cascade is one "
               "abort event taking its nested speculative tail with it")
    emit(table, "c11_anatomy.txt")

    benchmark(lambda: run_point(0.5, seeds=[0]))
