"""Experiment C11 — the anatomy of speculation under increasing fault rates.

Uses the protocol-log analysis tools to expose the quantities the paper
reasons about informally: how deep speculation runs, how long guesses stay
in doubt, how large the abort cascades get as guesses degrade — and, via
the forensics layer, how much traced segment time each fault rate wastes
and how much of the makespan the committed critical path explains
(:mod:`repro.obs.forensics`, :mod:`repro.obs.critical_path`; the same
quantities ``make bench-obs`` gates in ``BENCH_obs.json``).
"""

import numpy as np

from repro.bench import Table, emit
from repro.core.analysis import summarize
from repro.obs.critical_path import critical_path
from repro.obs.forensics import wasted_work
from repro.obs.tracer import RecordingTracer
from repro.workloads.generators import ChainSpec, run_chain_optimistic


def run_point(p_fail: float, seeds=range(5)):
    rows = []
    for seed in seeds:
        spec = ChainSpec(n_calls=10, n_servers=2, latency=5.0,
                         service_time=0.5, p_fail=p_fail, seed=seed)
        tracer = RecordingTracer()
        res = run_chain_optimistic(spec, tracer=tracer)
        rows.append((summarize(res.protocol_log),
                     wasted_work(res.spans),
                     critical_path(res.spans)))
    return rows


def test_c11_speculation_anatomy(benchmark):
    table = Table(
        "C11: speculation anatomy vs fault rate (10-call chain, 5 seeds)",
        ["p_fail", "forks/run", "aborts/run", "max depth",
         "mean doubt time", "largest cascade", "wasted frac", "cp util"],
    )
    depths = {}
    wasted = {}
    for p_fail in [0.0, 0.2, 0.5, 0.8]:
        rows = run_point(p_fail)
        summaries = [s for s, _, _ in rows]
        table.add(
            p_fail,
            float(np.mean([s.forks for s in summaries])),
            float(np.mean([s.aborts for s in summaries])),
            max(s.max_depth for s in summaries),
            float(np.mean([s.mean_doubt_time for s in summaries])),
            max(s.largest_cascade for s in summaries),
            float(np.mean([w.wasted_fraction for _, w, _ in rows])),
            float(np.mean([cp.utilization for _, _, cp in rows])),
        )
        depths[p_fail] = max(s.max_depth for s in summaries)
        wasted[p_fail] = float(np.mean([w.wasted_fraction
                                        for _, w, _ in rows]))
    # fault-free runs speculate to the full chain depth
    assert depths[0.0] == 9
    # ... and, having nothing to roll back, waste no segment time
    assert wasted[0.0] == 0.0
    # degrading guesses destroy an increasing share of the traced work
    assert wasted[0.8] > wasted[0.2] > 0.0
    # a failure truncates speculation, so cascades appear
    high = run_point(0.8)
    assert max(s.largest_cascade for s, _, _ in high) >= 2
    table.note("max depth = outstanding guesses at once; a cascade is one "
               "abort event taking its nested speculative tail with it; "
               "wasted frac / cp util come from the forensics layer "
               "(python -m repro explain, make bench-obs)")
    emit(table, "c11_anatomy.txt")

    benchmark(lambda: run_point(0.5, seeds=[0]))
