"""Experiment C4 — §4.2.2: protocol overhead accounting.

Guard tags piggyback on every data message and COMMIT/ABORT/PRECEDENCE
are broadcast.  The sweep varies chain depth (= fork density) and reports
tag units per data message and control messages per data message.
"""

from repro.bench import Table, emit
from repro.core.config import OptimisticConfig
from repro.workloads.generators import ChainSpec, run_chain_optimistic


def run_point(n_calls: int, p_fail: float = 0.0, seed: int = 0):
    spec = ChainSpec(n_calls=n_calls, n_servers=2, latency=5.0,
                     service_time=0.5, p_fail=p_fail, seed=seed)
    return run_chain_optimistic(spec)


def test_c4_overhead(benchmark):
    table = Table(
        "C4: guard-tag and control-message overhead vs fork density",
        ["N calls", "p_fail", "data msgs", "ctrl msgs", "ctrl/data",
         "tag units", "tags/data msg"],
    )
    for n_calls in [2, 5, 10, 20]:
        for p_fail in [0.0, 0.5]:
            res = run_point(n_calls, p_fail, seed=4)
            data = res.stats.get("net.msgs.data")
            ctrl = res.stats.get("net.msgs.control")
            tags = res.stats.get("opt.guard_tag_units")
            table.add(n_calls, p_fail, data, ctrl, ctrl / data,
                      tags, tags / data)
    res_small = run_point(2)
    res_big = run_point(20)
    # deeper chains carry more outstanding guesses per message
    small_rate = (res_small.stats.get("opt.guard_tag_units")
                  / res_small.stats.get("net.msgs.data"))
    big_rate = (res_big.stats.get("opt.guard_tag_units")
                / res_big.stats.get("net.msgs.data"))
    assert big_rate > small_rate
    table.note("control traffic is broadcast per guess resolution; tag "
               "bytes grow with outstanding speculation depth")
    emit(table, "c4_overhead.txt")

    benchmark(lambda: run_point(10))
