"""Experiment F7 — Figure 7: mutual speculation forms a causal cycle.

Both left threads consume the other side's speculative send; the
PRECEDENCE exchange reveals x1 → z1 → x1 and both abort, rolling W and Y
back.  The underlying program deadlocks sequentially, so nothing commits.
"""

from repro.bench import Table, emit
from repro.workloads.scenarios import run_fig7_cycle


def test_fig7_cycle_abort(benchmark):
    table = Table(
        "F7: Figure 7 — cycle x1 -> z1 -> x1 detected via PRECEDENCE",
        ["latency", "detect time", "cycle aborts", "rollbacks(W+Y)",
         "commits", "committed sends"],
    )
    for latency in [1.0, 3.0, 6.0, 12.0]:
        res = run_fig7_cycle(latency=latency)
        detects = [e["time"] for e in res.events("cycle_abort")]
        table.add(
            latency,
            min(detects) if detects else float("nan"),
            res.stats.get("opt.aborts.cycle"),
            res.count("rollback", "W") + res.count("rollback", "Y"),
            res.stats.get("opt.commits"),
            len([e for e in res.trace if e.kind == "send"]),
        )
        assert res.stats.get("opt.aborts.cycle") == 2
        assert res.stats.get("opt.commits") == 0
    table.note("no committed external behaviour: the optimistic run must "
               "not outrun the (deadlocking) sequential semantics")
    emit(table, "f7_cycle_abort.txt")

    benchmark(lambda: run_fig7_cycle(latency=3.0))
