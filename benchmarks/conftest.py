"""Shared fixtures for the experiment benches."""

import pytest


@pytest.fixture(autouse=True)
def _show_tables(capsys):
    """Let table output through after each bench for visibility with -s."""
    yield
