"""Experiment F4 — Figure 4: time fault detection and repair.

X's speculative call to Z races Y's causally-earlier nested call.  The
sweep varies how *late* the nested path is; in every case the protocol
aborts the guess, rolls back Y and Z, and converges to the sequential
trace — at a measurable cost over the pessimistic run (the paper's
"average performance will be worse because of excessive rollbacks" when
guesses are bad).
"""

from repro.bench import Table, emit
from repro.trace import assert_equivalent
from repro.workloads.scenarios import run_fig4_time_fault


def test_fig4_time_fault(benchmark):
    table = Table(
        "F4: Figure 4 — time fault (speculative call wins the race)",
        ["Y->Z latency", "sequential", "optimistic", "slowdown",
         "time faults", "rollbacks", "orphans"],
    )
    for slow in [4.0, 10.0, 20.0, 40.0]:
        res = run_fig4_time_fault(fast=2.0, slow=slow)
        assert_equivalent(res.optimistic.trace, res.sequential.trace)
        opt = res.optimistic
        table.add(
            slow,
            res.sequential.makespan,
            opt.makespan,
            opt.makespan / res.sequential.makespan,
            opt.stats.get("opt.aborts.time_fault"),
            opt.stats.get("opt.rollbacks"),
            opt.stats.get("opt.orphans_discarded"),
        )
    table.note("wrong guess: detection + distributed rollback costs time, "
               "but the committed trace always equals the sequential one")
    emit(table, "f4_time_fault.txt")

    benchmark(lambda: run_fig4_time_fault(fast=2.0, slow=10.0))
