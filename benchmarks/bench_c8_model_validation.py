"""Experiment C8 — analytic model vs simulation.

Validates the closed-form streaming model (repro.core.model) against the
simulator across a (N, M, L, s, c) grid — fault-free runs must match
*exactly* — and against seeded failure sweeps in expectation.
"""

import numpy as np

from repro.bench import Table, emit
from repro.core.model import (
    expected_sequential,
    expected_streamed,
    t_sequential,
    t_streamed,
)
from repro.workloads.generators import (
    ChainSpec,
    run_chain_optimistic,
    run_chain_sequential,
)


def test_c8_model_validation(benchmark):
    table = Table(
        "C8: analytic model vs simulation (fault-free: exact)",
        ["N", "M", "L", "s", "c", "sim seq", "model seq", "sim opt",
         "model opt"],
    )
    grid = [
        (2, 2, 5.0, 1.0, 0.0),     # the Fig. 2/3 point
        (8, 2, 5.0, 0.5, 0.0),
        (10, 1, 3.0, 1.0, 0.5),
        (20, 4, 25.0, 0.25, 1.0),
        (5, 5, 0.5, 2.0, 0.0),
    ]
    for n, m, lat, svc, think in grid:
        spec = ChainSpec(n_calls=n, n_servers=m, latency=lat,
                         service_time=svc, compute_between=think)
        seq = run_chain_sequential(spec).makespan
        opt = run_chain_optimistic(spec).makespan
        mseq = t_sequential(n, lat, svc, think)
        mopt = t_streamed(n, lat, svc, think, n_servers=m)
        assert abs(seq - mseq) < 1e-9
        assert abs(opt - mopt) < 1e-9
        table.add(n, m, lat, svc, think, seq, mseq, opt, mopt)
    table.note("fault-free simulation matches the closed forms exactly")
    emit(table, "c8_model_validation.txt")

    table2 = Table(
        "C8b: expected completion under failures (mean of 40 seeds)",
        ["p_fail", "sim seq mean", "model E[seq]", "sim opt mean",
         "model E[opt]"],
    )
    n, m, lat, svc = 6, 2, 5.0, 0.5
    for p in [0.25, 0.5, 0.75]:
        seqs, opts = [], []
        for seed in range(40):
            spec = ChainSpec(n_calls=n, n_servers=m, latency=lat,
                             service_time=svc, p_fail=p, seed=seed)
            seqs.append(run_chain_sequential(spec).makespan)
            opts.append(run_chain_optimistic(spec).makespan)
        sim_seq, sim_opt = float(np.mean(seqs)), float(np.mean(opts))
        m_seq = expected_sequential(n, lat, svc, p)
        m_opt = expected_streamed(n, lat, svc, p, n_servers=m)
        assert abs(sim_seq - m_seq) / m_seq < 0.3
        assert abs(sim_opt - m_opt) / m_opt < 0.3
        table2.add(p, sim_seq, m_seq, sim_opt, m_opt)
    table2.note("seeded failure draws track the stop-length expectation")
    emit(table2, "c8b_model_expectation.txt")

    spec = ChainSpec(n_calls=8, n_servers=2, latency=5.0, service_time=0.5)
    benchmark(lambda: run_chain_optimistic(spec))
