"""Experiment F3 — Figure 3: successful optimistic call streaming.

The two calls overlap: completion collapses from two round trips to one,
the guess commits with no rollback anywhere, and the committed trace is
identical to Figure 2's.
"""

from repro.bench import Table, emit
from repro.trace import assert_equivalent
from repro.workloads.scenarios import run_fig3_streaming


def test_fig3_streaming(benchmark):
    table = Table(
        "F3: Figure 3 — successful call streaming",
        ["latency", "sequential", "optimistic", "speedup", "aborts",
         "rollbacks"],
    )
    for latency in [1.0, 2.0, 5.0, 10.0, 25.0, 50.0]:
        res = run_fig3_streaming(latency=latency, service_time=1.0)
        assert_equivalent(res.optimistic.trace, res.sequential.trace)
        table.add(
            latency,
            res.sequential.makespan,
            res.optimistic.makespan,
            res.speedup,
            res.optimistic.stats.get("opt.aborts"),
            res.optimistic.stats.get("opt.rollbacks"),
        )
    table.note("guess correct: both round trips fully overlap (speedup = 2)")
    emit(table, "f3_streaming.txt")

    benchmark(lambda: run_fig3_streaming(latency=5.0))
