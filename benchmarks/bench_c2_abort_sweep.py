"""Experiment C2 — §1 claim: "whether we guess right or wrong, the results
are correct, and provided we usually guess right, we still obtain a
performance improvement."

Sweeps the per-request failure probability.  Every point re-verifies
Theorem 1; the completion-time column shows the win eroding as guesses go
bad, and the break-even row marks where optimism stops paying.
"""

import numpy as np

from repro.bench import Table, emit
from repro.trace import assert_equivalent
from repro.workloads.generators import (
    ChainSpec,
    run_chain_optimistic,
    run_chain_sequential,
)


def run_point(p_fail: float, seeds=range(5)):
    seq_times, opt_times, aborts = [], [], []
    for seed in seeds:
        spec = ChainSpec(n_calls=8, n_servers=2, latency=5.0,
                         service_time=0.5, p_fail=p_fail, seed=seed)
        seq = run_chain_sequential(spec)
        opt = run_chain_optimistic(spec)
        assert_equivalent(opt.trace, seq.trace)
        seq_times.append(seq.makespan)
        opt_times.append(opt.makespan)
        aborts.append(opt.stats.get("opt.aborts"))
    return (float(np.mean(seq_times)), float(np.mean(opt_times)),
            float(np.mean(aborts)))


def test_c2_abort_probability_sweep(benchmark):
    table = Table(
        "C2: completion vs guess-failure probability (mean of 5 seeds)",
        ["p_fail", "sequential", "optimistic", "speedup", "aborts/run"],
    )
    speedups = []
    for p_fail in [0.0, 0.1, 0.25, 0.5, 0.75, 1.0]:
        seq_t, opt_t, ab = run_point(p_fail)
        speedup = seq_t / opt_t
        speedups.append((p_fail, speedup))
        table.add(p_fail, seq_t, opt_t, speedup, ab)
    # shape: monotone-ish decay; clear win at p=0, no win at p=1
    assert speedups[0][1] > 3.0
    assert abs(speedups[-1][1] - 1.0) < 0.5
    table.note("correctness holds at every p (Theorem 1 re-checked); the "
               "win decays toward parity as guesses fail")
    emit(table, "c2_abort_sweep.txt")

    benchmark(lambda: run_point(0.25, seeds=[0]))
