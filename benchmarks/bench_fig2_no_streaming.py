"""Experiment F2 — Figure 2: the blocking execution.

Reports the sequential completion time across a latency sweep; the shape is
``makespan = 2 × (latency + service + latency)`` — each call pays a full
round trip.
"""

from repro.bench import Table, emit
from repro.workloads.scenarios import run_fig2_no_streaming


def test_fig2_no_streaming(benchmark):
    table = Table(
        "F2: Figure 2 — no call streaming (blocking RPC)",
        ["latency", "service", "makespan", "predicted 2*(2L+S)"],
    )
    for latency in [1.0, 2.0, 5.0, 10.0, 25.0, 50.0]:
        res = run_fig2_no_streaming(latency=latency, service_time=1.0)
        predicted = 2 * (2 * latency + 1.0)
        assert res.makespan == predicted
        table.add(latency, 1.0, res.makespan, predicted)
    table.note("each of the two calls waits out its full round trip")
    emit(table, "f2_no_streaming.txt")

    benchmark(lambda: run_fig2_no_streaming(latency=5.0))
