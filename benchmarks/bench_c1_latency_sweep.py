"""Experiment C1 — §1 claim: streaming wins when RTT ≫ compute.

Sweeps chain length × latency under a fixed fork overhead.  The paper's
claim has two halves: (a) at high latency the speedup approaches the call
count N; (b) at latency comparable to the per-fork overhead streaming can
even lose — the crossover the table makes visible.
"""

from repro.bench import Table, emit
from repro.core.config import OptimisticConfig
from repro.workloads.generators import (
    ChainSpec,
    run_chain_optimistic,
    run_chain_sequential,
)

FORK_COST = 1.0


def run_point(n_calls: int, latency: float):
    spec = ChainSpec(n_calls=n_calls, n_servers=2, latency=latency,
                     service_time=0.5)
    seq = run_chain_sequential(spec)
    opt = run_chain_optimistic(spec, OptimisticConfig(fork_cost=FORK_COST))
    return seq.makespan, opt.makespan


def test_c1_latency_sweep(benchmark):
    table = Table(
        "C1: streaming speedup vs latency (fork_cost=1)",
        ["N calls", "latency", "sequential", "optimistic", "speedup",
         "streaming wins"],
    )
    crossover_seen = False
    high_latency_speedups = []
    for n_calls in [2, 5, 10, 20]:
        for latency in [0.1, 0.5, 1.0, 5.0, 20.0, 100.0]:
            seq_t, opt_t = run_point(n_calls, latency)
            speedup = seq_t / opt_t
            wins = speedup > 1.0
            if not wins:
                crossover_seen = True
            if latency == 100.0:
                high_latency_speedups.append((n_calls, speedup))
            table.add(n_calls, latency, seq_t, opt_t, speedup,
                      "yes" if wins else "NO")
    # shape checks: big win at high latency, approaching N
    for n_calls, speedup in high_latency_speedups:
        assert speedup > 0.8 * n_calls
    assert crossover_seen, "expected streaming to lose at very low latency"
    table.note("speedup -> N as latency grows; streaming loses below the "
               "fork-overhead crossover")
    emit(table, "c1_latency_sweep.txt")

    benchmark(lambda: run_point(10, 5.0))
