"""Ablation A1 — §3.1: checkpoint-versus-replay rollback.

"A process may take a state checkpoint at each point prior to acquiring a
new commit guard predicate [Time Warp style] ... or restore the state by
resuming from the checkpoint and replaying messages [Optimistic Recovery
style].  The particular technique is a performance tuning decision and
does not affect the correctness of the transformation."

The sweep varies the failure rate (more aborts ⇒ more rollbacks) and the
per-request service time (more compute to re-pay under REPLAY).
"""

from repro.bench import Table, emit
from repro.core.config import CheckpointPolicy, OptimisticConfig
from repro.trace import traces_equivalent
from repro.workloads.generators import (
    ChainSpec,
    run_chain_optimistic,
    run_chain_sequential,
)


def run_point(p_fail: float, service: float, policy, restore_cost=0.5):
    spec = ChainSpec(n_calls=8, n_servers=2, latency=4.0,
                     service_time=service, p_fail=p_fail, seed=11)
    config = OptimisticConfig(checkpoint_policy=policy,
                              restore_cost=restore_cost)
    return spec, run_chain_optimistic(spec, config)


def test_a1_checkpoint_policy(benchmark):
    table = Table(
        "A1: rollback policy — REPLAY vs EAGER_COPY (restore_cost=0.5)",
        ["p_fail", "service", "REPLAY makespan", "EAGER makespan",
         "rollbacks", "traces equal"],
    )
    for p_fail in [0.0, 0.3, 0.6]:
        for service in [0.5, 3.0]:
            spec, replay = run_point(p_fail, service, CheckpointPolicy.REPLAY)
            _, eager = run_point(p_fail, service, CheckpointPolicy.EAGER_COPY)
            seq = run_chain_sequential(spec)
            same = (traces_equivalent(replay.trace, seq.trace)
                    and traces_equivalent(eager.trace, seq.trace))
            assert same
            table.add(p_fail, service, replay.makespan, eager.makespan,
                      replay.stats.get("opt.rollbacks"), "yes")
    # with heavy compute and many aborts, replay re-pays service time
    _, replay = run_point(0.6, 3.0, CheckpointPolicy.REPLAY)
    _, eager = run_point(0.6, 3.0, CheckpointPolicy.EAGER_COPY)
    assert replay.makespan >= eager.makespan
    table.note("identical committed traces under both policies — only the "
               "virtual cost of rollback differs")
    emit(table, "a1_checkpoint_policy.txt")

    # §3.1's middle ground: interval checkpoints under REPLAY.  Scenario:
    # a non-stopping chain whose call 5 returns an unexpected value, so
    # the continuation re-issues calls 6..9 — but the server must first
    # finish replaying the six requests it had already served (2.0 compute
    # each), putting the replay debt squarely on the critical path.
    from repro.core import OptimisticSystem, make_call_chain, stream_plan
    from repro.csp.process import server_program
    from repro.sim.network import FixedLatency

    def run_interval(interval):
        calls = [("srv", "op", (f"q{i}",)) for i in range(10)]
        client = make_call_chain("client", calls, stop_on_failure=False)
        config = OptimisticConfig(
            checkpoint_policy=CheckpointPolicy.REPLAY,
            checkpoint_interval=interval, restore_cost=0.2)
        system = OptimisticSystem(FixedLatency(4.0), config=config)
        system.add_program(client, stream_plan(client))
        system.add_program(server_program(
            "srv", lambda s, r: (False if r.args[0] == "q5" else True),
            service_time=2.0))
        return system.run()

    table2 = Table(
        "A1b: REPLAY with interval checkpoints (server replays 6 served "
        "requests before re-serving the tail)",
        ["checkpoint interval", "optimistic makespan"],
    )
    spans = {}
    for interval in [None, 6, 3, 1]:
        res = run_interval(interval)
        spans[interval] = res.makespan
        table2.add("birth only" if interval is None else interval,
                   res.makespan)
    assert spans[1] < spans[None]
    assert spans[3] <= spans[6] <= spans[None]
    table2.note("denser checkpoints re-pay less compute on rollback, at "
                "restore_cost per restore — the §3.1 tuning knob, swept")
    emit(table2, "a1b_checkpoint_interval.txt")

    benchmark(lambda: run_point(0.3, 0.5, CheckpointPolicy.REPLAY))
