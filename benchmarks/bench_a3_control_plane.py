"""Ablation A3 — §4.2.5: broadcast vs targeted control messages.

"The former should work well in a local-area network where the threads
are created relatively infrequently.  The latter would be more appropriate
in a wide-area network or when the number of threads created is large."

The sweep varies how many uninvolved processes share the system: broadcast
cost scales with system size, targeted cost scales with actual dependence.
"""

from repro.bench import Table, emit
from repro.core.config import ControlPlane, OptimisticConfig
from repro.core import OptimisticSystem, stream_plan
from repro.csp.process import server_program
from repro.sim.network import FixedLatency
from repro.workloads.generators import ChainSpec, chain_workload


def run_point(control_plane: ControlPlane, n_bystanders: int):
    spec = ChainSpec(n_calls=6, n_servers=2, latency=3.0, service_time=0.5)
    client, servers = chain_workload(spec)
    system = OptimisticSystem(
        FixedLatency(spec.latency),
        config=OptimisticConfig(control_plane=control_plane),
    )
    system.add_program(client, stream_plan(client))
    for s in servers:
        system.add_program(s)
    for i in range(n_bystanders):
        system.add_program(server_program(f"idle{i}", lambda s, r: None))
    return system.run()


def test_a3_control_plane(benchmark):
    table = Table(
        "A3: control plane — broadcast vs targeted+relay",
        ["bystanders", "plane", "ctrl msgs", "makespan", "commits"],
    )
    for n_bystanders in [0, 4, 16, 64]:
        for plane in ControlPlane:
            res = run_point(plane, n_bystanders)
            assert res.unresolved == []
            table.add(n_bystanders, plane.value,
                      res.stats.get("net.msgs.control"),
                      res.makespan, res.stats.get("opt.commits"))
    big_b = run_point(ControlPlane.BROADCAST, 64)
    big_t = run_point(ControlPlane.TARGETED, 64)
    assert (big_t.stats.get("net.msgs.control")
            < big_b.stats.get("net.msgs.control") / 5)
    table.note("broadcast control grows with system size; targeted control "
               "grows only with real dependence edges")
    emit(table, "a3_control_plane.txt")

    benchmark(lambda: run_point(ControlPlane.TARGETED, 16))
