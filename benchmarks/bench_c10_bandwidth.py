"""Experiment C10 — §1: "when bandwidth is high but round-trip delays are
long".

The paper scopes call streaming to the high-bandwidth regime.  With link
bandwidth modelled, the sweep shows why: at low bandwidth the streamed
burst of tagged messages serializes on the wire and the advantage
collapses, while blocking RPC (one small message in flight at a time)
barely notices.  Guard-tag compression (§4.1.2) claws part of the cost
back by shrinking the per-message tags.
"""

from repro.bench import Table, emit
from repro.core import OptimisticSystem, make_call_chain, stream_plan
from repro.core.config import OptimisticConfig
from repro.csp.process import server_program
from repro.csp.sequential import SequentialSystem
from repro.sim.network import FixedLatency
from repro.trace import assert_equivalent

N_CALLS = 12
LATENCY = 10.0


def build(cls, optimistic, bandwidth, config=None):
    calls = [("srv", "op", (f"r{i}",)) for i in range(N_CALLS)]
    client = make_call_chain("client", calls)
    kwargs = {"bandwidth": bandwidth}
    if optimistic:
        system = cls(FixedLatency(LATENCY), config=config, **kwargs)
        system.add_program(client, stream_plan(client))
    else:
        system = cls(FixedLatency(LATENCY), **kwargs)
        system.add_program(client)
    system.add_program(server_program("srv", lambda s, r: True,
                                      service_time=0.2))
    return system


def test_c10_bandwidth(benchmark):
    table = Table(
        "C10: streaming vs blocking across link bandwidth (12 calls, lat 10)",
        ["bandwidth", "blocking", "streamed", "streamed+compress",
         "speedup", "speedup+compress"],
    )
    speedups = []
    for bandwidth in [0.1, 0.25, 0.5, 1.0, 4.0, None]:
        seq = build(SequentialSystem, False, bandwidth).run()
        opt = build(OptimisticSystem, True, bandwidth).run()
        comp = build(OptimisticSystem, True, bandwidth,
                     OptimisticConfig(compress_guards=True)).run()
        assert_equivalent(opt.trace, seq.trace)
        assert_equivalent(comp.trace, seq.trace)
        s = seq.makespan / opt.makespan
        sc = seq.makespan / comp.makespan
        speedups.append((bandwidth, s, sc))
        table.add("inf" if bandwidth is None else bandwidth,
                  seq.makespan, opt.makespan, comp.makespan, s, sc)
    # high bandwidth: full win; low bandwidth: advantage collapses
    assert speedups[-1][1] > 5.0
    assert speedups[0][1] < speedups[-1][1] / 2
    # compression never hurts and helps when the wire is tight
    for bandwidth, s, sc in speedups:
        assert sc >= s - 1e-9
    table.note("the streamed burst serializes on a slow wire (tags "
               "included); compression shrinks the tags and recovers part "
               "of the win — the paper's high-bandwidth proviso, measured")
    emit(table, "c10_bandwidth.txt")

    benchmark(lambda: build(OptimisticSystem, True, 1.0).run())
