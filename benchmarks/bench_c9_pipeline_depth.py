"""Experiment C9 — speculation across service tiers.

Generalizes Fig. 4's nested topology to depth D and measures how the
transformation composes across processes:

* nested-call tiers (each tier blocks on the next) serialize whole round
  trips through the single-threaded bottleneck — streaming helps only
  modestly (an honest negative result);
* relay tiers (reply-then-forward) let speculative work cascade down
  every tier, with a mid-stream failure rolled back across the full
  depth.
"""

from repro.bench import Table, emit
from repro.core.invariants import validate_run
from repro.trace import assert_equivalent
from repro.workloads.pipelines import (
    PipelineSpec,
    run_pipeline_optimistic,
    run_pipeline_sequential,
)


def test_c9_pipeline_depth(benchmark):
    table = Table(
        "C9: nested-call vs relay tiers across pipeline depth (6 requests)",
        ["depth", "tier style", "sequential", "optimistic", "speedup",
         "rollbacks", "orphans"],
    )
    for depth in [1, 2, 4, 6]:
        for relay in (False, True):
            spec = PipelineSpec(n_requests=6, depth=depth,
                                service_time=0.5, relay=relay)
            seq = run_pipeline_sequential(spec)
            system, opt = run_pipeline_optimistic(spec)
            assert_equivalent(opt.trace, seq.trace)
            validate_run(system)
            table.add(
                depth,
                "relay" if relay else "nested",
                seq.makespan,
                opt.makespan,
                seq.makespan / opt.makespan,
                opt.stats.get("opt.rollbacks"),
                opt.stats.get("opt.orphans_discarded"),
            )
    # relay tiers keep the full streaming win regardless of depth; nested
    # tiers serialize and the win shrinks as depth grows
    spec_r = PipelineSpec(n_requests=6, depth=6, service_time=0.5, relay=True)
    spec_n = PipelineSpec(n_requests=6, depth=6, service_time=0.5, relay=False)
    seq_r = run_pipeline_sequential(spec_r)
    _, opt_r = run_pipeline_optimistic(spec_r)
    seq_n = run_pipeline_sequential(spec_n)
    _, opt_n = run_pipeline_optimistic(spec_n)
    assert (seq_r.makespan / opt_r.makespan) > (seq_n.makespan / opt_n.makespan)
    table.note("single-threaded nested tiers are a serialization bottleneck "
               "speculation cannot remove; reply-then-forward tiers let the "
               "speculative stream cascade the full depth")
    emit(table, "c9_pipeline_depth.txt")

    spec = PipelineSpec(n_requests=6, depth=4, relay=True)
    benchmark(lambda: run_pipeline_optimistic(spec))
