"""Experiment C6 — §1: the X-windows pipelining contrast.

Asynchronous sends with async error notification are as fast as physics
allows, but after a failure they have already shown the world outputs a
correct execution would never produce.  The optimistic protocol matches
the pipelined *throughput shape* when guesses hold while never leaking a
speculative output (Theorem 1 + output commit).
"""

from repro.baselines.pipelining import run_pipelined_chain
from repro.bench import Table, emit
from repro.workloads.generators import (
    ChainSpec,
    run_chain_optimistic,
    run_chain_sequential,
)


def test_c6_pipelining(benchmark):
    table = Table(
        "C6: unsafe pipelining vs optimistic streaming vs blocking",
        ["p_fail", "seed", "blocking", "optimistic", "pipelined (settled)",
         "unsafe outputs"],
    )
    leaks = 0
    for p_fail, seed in [(0.0, 0), (0.3, 6), (0.3, 12), (0.6, 2)]:
        spec = ChainSpec(n_calls=8, n_servers=1, latency=5.0,
                         service_time=0.5, p_fail=p_fail, seed=seed)
        seq = run_chain_sequential(spec)
        opt = run_chain_optimistic(spec)
        pipe = run_pipelined_chain(spec)
        leaks += pipe.unsafe_outputs
        table.add(p_fail, seed, seq.makespan, opt.makespan,
                  pipe.settled_time, pipe.unsafe_outputs)
        assert opt.unresolved == []
    assert leaks > 0, "expected at least one unsafe pipelined output"
    table.note("the optimistic run buffers external output until commit, "
               "so its unsafe-output count is zero by construction")
    emit(table, "c6_pipelining.txt")

    spec = ChainSpec(n_calls=8, n_servers=1, latency=5.0, service_time=0.5)
    benchmark(lambda: run_pipelined_chain(spec))
