"""Experiment C3 — §3.3: the liveness limit L bounds re-execution.

An adversarial workload (every request fails, so every guess is wrong)
re-forks each site until its attempt counter hits L, then falls back to
pessimistic execution.  The table shows aborts growing with L while the
result stays correct — bounded optimism, guaranteed progress.
"""

from repro.bench import Table, emit
from repro.core.config import OptimisticConfig
from repro.trace import assert_equivalent
from repro.workloads.generators import (
    ChainSpec,
    run_chain_optimistic,
    run_chain_sequential,
)

SPEC = ChainSpec(n_calls=6, n_servers=1, latency=3.0, service_time=0.5,
                 p_fail=1.0, seed=1)


def run_point(limit: int):
    seq = run_chain_sequential(SPEC)
    opt = run_chain_optimistic(
        SPEC, OptimisticConfig(max_optimistic_retries=limit))
    assert opt.unresolved == []
    assert_equivalent(opt.trace, seq.trace)
    return seq, opt


def test_c3_liveness_limit(benchmark):
    table = Table(
        "C3: liveness limit L under an always-wrong oracle",
        ["L", "sequential", "optimistic", "forks", "aborts",
         "pessimistic fallbacks"],
    )
    prev_aborts = -1
    for limit in [1, 2, 3, 5]:
        seq, opt = run_point(limit)
        aborts = opt.stats.get("opt.aborts")
        table.add(limit, seq.makespan, opt.makespan,
                  opt.stats.get("opt.forks"), aborts,
                  opt.stats.get("opt.fork_fallback_pessimistic"))
        assert aborts >= prev_aborts  # more budget, more (bounded) waste
        prev_aborts = aborts
    table.note("every run terminates with the sequential trace; L only "
               "bounds how much speculative work is wasted first")
    emit(table, "c3_liveness.txt")

    benchmark(lambda: run_point(3))
