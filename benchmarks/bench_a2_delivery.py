"""Ablation A2 — §4.2.3: message-to-thread delivery heuristics.

"From a correctness point of view, a message can be delivered to an
arbitrary thread of the process, but we will often have information
available which allows us to optimize the delivery decision ... the one
that introduces the fewest new dependencies should be chosen [earliest
thread on ties]; this minimizes the chance that receiving the message will
lead to an aborted state."

Scenario: a client whose S1 and S2 each perform a Receive, with S1 forked.
Both threads block in Receive simultaneously; the feeder's first message
logically belongs to S1.  MIN_NEW_DEPS hands it to the earliest thread and
everything commits; LATEST_THREAD hands it to the speculative thread,
whose guess then fails at the join — a needless abort (still correct: the
paper's point is exactly that the choice is a performance matter).
"""

from repro.bench import Table, emit
from repro.core import OptimisticSystem
from repro.core.config import DeliveryHeuristic, OptimisticConfig
from repro.csp.effects import Receive, Send
from repro.csp.plan import ForkSpec, ParallelizationPlan
from repro.csp.process import Program, Segment
from repro.sim.network import FixedLatency


def build(heuristic: DeliveryHeuristic, latency: float = 3.0):
    def s1(state):
        req = yield Receive()
        state["first"] = req.args[0]

    def s2(state):
        req = yield Receive()
        state["second"] = req.args[0]

    client = Program("client", [
        Segment("s1", s1, exports=("first",)),
        Segment("s2", s2, exports=("second",)),
    ])
    plan = ParallelizationPlan().add(
        "s1", ForkSpec(predictor={"first": "m1"}))

    def feeder(state):
        yield Send("client", "msg", ("m1",))
        yield Send("client", "msg", ("m2",))

    system = OptimisticSystem(
        FixedLatency(latency),
        config=OptimisticConfig(delivery_heuristic=heuristic),
    )
    system.add_program(client, plan)
    system.add_program(Program("feeder", [Segment("feed", feeder)]))
    return system


def run_point(heuristic: DeliveryHeuristic):
    res = build(heuristic).run()
    assert res.unresolved == []
    return res


def test_a2_delivery_heuristics(benchmark):
    table = Table(
        "A2: delivery heuristic — fewest-new-dependencies vs latest-thread",
        ["heuristic", "makespan", "aborts", "rollbacks", "final state"],
    )
    results = {}
    for heuristic in DeliveryHeuristic:
        res = run_point(heuristic)
        results[heuristic] = res
        table.add(
            heuristic.value,
            res.makespan,
            res.stats.get("opt.aborts"),
            res.stats.get("opt.rollbacks"),
            str(res.final_states.get("client")),
        )
    good = results[DeliveryHeuristic.MIN_NEW_DEPS]
    bad = results[DeliveryHeuristic.LATEST_THREAD]
    assert good.stats.get("opt.aborts") == 0
    assert bad.stats.get("opt.aborts") >= 1
    assert good.makespan <= bad.makespan
    table.note("both deliveries are CSP-legal (receives are nondeterministic "
               "choice); the paper's heuristic avoids the speculative abort")
    emit(table, "a2_delivery.txt")

    benchmark(lambda: run_point(DeliveryHeuristic.MIN_NEW_DEPS))
