"""Experiment C7 — promise pipelining vs optimistic streaming.

Promise pipelining (E, Cap'n Proto) is the closest modern relative of call
streaming: data-dependent calls pipeline without waiting.  But it is
data-flow only — a *control* dependency (`if OK: Write(...)`, the paper's
Figure 1!) forces a full round-trip stall, because a client cannot branch
on an unresolved promise.  The optimistic transformation guesses the
branch and keeps streaming, paying only when the guess was wrong.

The sweep varies how many of the chain's steps are control-dependent.
"""

from repro.baselines.promises import PCall, PromiseSystem, PWait
from repro.bench import Table, emit
from repro.core import OptimisticSystem, make_call_chain, stream_plan
from repro.csp.process import server_program
from repro.sim.network import FixedLatency

LATENCY = 5.0
N_CALLS = 8


def run_promises(n_branches: int):
    """A chain of N calls; the first ``n_branches`` results are branched on."""
    def client(state):
        for i in range(N_CALLS):
            p = yield PCall("srv", "op", (f"req{i}",))
            if i < n_branches:
                value = yield PWait(p)   # control dependency: must stall
                state[f"r{i}"] = value
        if N_CALLS > 0:
            state["last"] = yield PWait(p)

    system = PromiseSystem(FixedLatency(LATENCY), service_time=0.0)
    system.add_server("srv", lambda s, op, args: True)
    system.set_client(client)
    return system.run()


def run_optimistic():
    calls = [("srv", "op", (f"req{i}",)) for i in range(N_CALLS)]
    client = make_call_chain("X", calls, stop_on_failure=True,
                             failure_value=False)
    system = OptimisticSystem(FixedLatency(LATENCY))
    system.add_program(client, stream_plan(client))
    system.add_program(server_program("srv", lambda s, r: True))
    return system.run()


def test_c7_promise_pipelining(benchmark):
    opt = run_optimistic()
    table = Table(
        "C7: promise pipelining vs optimistic streaming (8 calls, lat 5)",
        ["system", "branch points", "completion", "round-trip stalls"],
    )
    table.add("optimistic streaming", "all 8 (guessed)", opt.makespan,
              0)
    for n_branches in [0, 1, 4, 8]:
        res = run_promises(n_branches)
        table.add("promise pipelining", n_branches, res.completion_time,
                  res.waits)
        if n_branches == 0:
            # pure data flow: pipelining matches streaming's shape
            assert res.completion_time <= opt.makespan + 2 * LATENCY
        if n_branches == 8:
            # fully control-dependent: degraded to blocking RPC
            assert res.completion_time >= N_CALLS * 2 * LATENCY
    assert opt.makespan <= 2 * LATENCY + 1  # streams through all branches
    table.note("every step of the paper's Fig. 1 chain branches on the "
               "previous result — the case promise pipelining cannot "
               "pipeline and optimistic speculation can")
    emit(table, "c7_promises.txt")

    benchmark(lambda: run_promises(4))
