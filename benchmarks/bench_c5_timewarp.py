"""Experiment C5 — §5: Time Warp comparison (total vs partial order).

Time Warp needs an application-assigned total order (virtual time); any
physical-arrival skew against that order is a straggler that rolls back,
even when no causal dependency was violated.  The paper's protocol only
aborts on *actual* happens-before violations.

Workload: a ring of service processes passing tokens.  Under Time Warp we
sweep physical jitter and count rollbacks; under the optimistic CSP
protocol an analogous multi-client chain workload with the same jitter
magnitude on its links commits without any abort, because no guess is ever
wrong — the partial order has no opinion about timestamp races.
"""

from repro.baselines.timewarp import TimeWarpKernel, sequential_reference
from repro.bench import Table, emit
from repro.core import OptimisticSystem, make_call_chain, stream_plan
from repro.csp.process import server_program
from repro.sim.network import JitteredLatency
from repro.sim.rng import RngRegistry


def ring_handler(targets):
    def handler(state, payload, recv_time):
        state["seen"] = state.get("seen", 0) + 1
        hops, nxt = payload
        if hops <= 0:
            return []
        return [(targets[nxt % len(targets)], 1.0, (hops - 1, nxt + 1))]

    return handler


def run_timewarp(jitter: float, seed: int = 3, cancellation="aggressive"):
    targets = ["a", "b", "c", "d"]
    handler = ring_handler(targets)
    kernel = TimeWarpKernel(physical_latency=1.0, physical_jitter=jitter,
                            processing_time=0.2, seed=seed,
                            cancellation=cancellation)
    for name in targets:
        kernel.add_lp(name, handler)
    kernel.schedule_initial("a", 1.0, (24, 1))
    kernel.schedule_initial("c", 1.5, (24, 3))
    res = kernel.run()
    ref = sequential_reference(
        {name: (handler, {}) for name in targets},
        [("a", 1.0, (24, 1)), ("c", 1.5, (24, 3))],
    )
    assert res.final_states == ref["states"]  # TW is correct, just wasteful
    return res


def run_optimistic_with_jitter(jitter: float, seed: int = 3):
    rng = RngRegistry(seed)
    latency = JitteredLatency(1.0, jitter, rng)
    calls = [("S0", "op", (f"req{i}",)) for i in range(12)]
    client = make_call_chain("client", calls)
    system = OptimisticSystem(latency)
    system.add_program(client, stream_plan(client))
    system.add_program(server_program("S0", lambda s, r: True,
                                      service_time=0.2))
    return system.run()


def test_c5_timewarp_comparison(benchmark):
    table = Table(
        "C5: Time Warp (total order) vs optimistic CSP (partial order)",
        ["jitter", "TW rollbacks", "TW anti-msgs", "TW events undone",
         "CSP aborts", "CSP rollbacks"],
    )
    for jitter in [0.0, 2.0, 6.0, 12.0]:
        tw = run_timewarp(jitter)
        opt = run_optimistic_with_jitter(jitter)
        assert opt.unresolved == []
        table.add(
            jitter,
            tw.stats.get("tw.rollbacks"),
            tw.stats.get("tw.msgs.anti"),
            tw.stats.get("tw.events_undone"),
            opt.stats.get("opt.aborts"),
            opt.stats.get("opt.rollbacks"),
        )
    high = run_timewarp(12.0)
    assert high.stats.get("tw.rollbacks") > 0
    opt = run_optimistic_with_jitter(12.0)
    assert opt.stats.get("opt.aborts") == 0
    table.note("timestamp races roll Time Warp back even though no causal "
               "order was violated; the partial-order protocol never aborts "
               "on pure timing")
    emit(table, "c5_timewarp.txt")

    # the classic Time Warp mitigation: lazy cancellation
    table2 = Table(
        "C5b: Time Warp cancellation policy under jitter 12",
        ["policy", "rollbacks", "anti-msgs", "reused outputs"],
    )
    for mode in ("aggressive", "lazy"):
        tw = run_timewarp(12.0, cancellation=mode)
        table2.add(mode, tw.stats.get("tw.rollbacks"),
                   tw.stats.get("tw.msgs.anti"),
                   tw.stats.get("tw.lazy_reused"))
    lazy = run_timewarp(12.0, cancellation="lazy")
    aggressive = run_timewarp(12.0, cancellation="aggressive")
    assert (lazy.stats.get("tw.msgs.anti")
            <= aggressive.stats.get("tw.msgs.anti"))
    table2.note("lazy cancellation withholds anti-messages until "
                "re-execution disproves an output; unchanged outputs are "
                "reused verbatim")
    emit(table2, "c5b_timewarp_lazy.txt")

    benchmark(lambda: run_timewarp(6.0))
