"""Ablation A4 — §2: how the guess is made ("run-time profiling").

The paper leaves the guessing mechanism open: pragmas (constant), run-time
profiling (learned), or static analysis (a state function).  This bench
runs a repeated workload whose server answers follow a skewed distribution
and compares abort rates across predictors as profiles accumulate.
"""

import hashlib

from repro.bench import Table, emit
from repro.core import OptimisticSystem
from repro.core.predictors import LastValue, Majority, learn_from
from repro.csp.effects import Call
from repro.csp.plan import ForkSpec, ParallelizationPlan, constant_predictor
from repro.csp.process import Program, Segment, server_program
from repro.sim.network import FixedLatency

SESSIONS = 12


def server_answer(session: int) -> str:
    """Mostly 'fast', occasionally 'slow' (deterministic, skewed 3-in-4)."""
    digest = hashlib.sha256(f"answer:{session}".encode()).digest()
    return "slow" if digest[0] % 4 == 0 else "fast"


def build_session(predictor, session: int):
    def s1(state):
        state["mode"] = yield Call("srv", "probe", ())

    def s2(state):
        state["r"] = yield Call("srv", "work", (state["mode"],))

    prog = Program("X", [Segment("s1", s1, exports=("mode",)),
                         Segment("s2", s2)])
    plan = ParallelizationPlan().add("s1", ForkSpec(predictor=predictor))
    system = OptimisticSystem(FixedLatency(4.0))
    system.add_program(prog, plan)
    system.add_program(server_program(
        "srv",
        lambda s, r, _n=session: (server_answer(_n) if r.op == "probe"
                                  else True),
        service_time=0.5,
    ))
    return system


def run_campaign(kind: str):
    if kind == "constant-fast":
        predictor = constant_predictor({"mode": "fast"})
        learned = None
    elif kind == "constant-slow":
        predictor = constant_predictor({"mode": "slow"})
        learned = None
    elif kind == "last-value":
        predictor = learned = LastValue({"mode": "fast"})
    elif kind == "majority":
        predictor = learned = Majority({"mode": "fast"})
    else:
        raise ValueError(kind)
    faults = 0
    total_time = 0.0
    for session in range(SESSIONS):
        system = build_session(predictor, session)
        res = system.run()
        faults += res.stats.get("opt.aborts.value_fault")
        total_time += res.makespan
        if learned is not None:
            learn_from(system, "X", "s1", learned)
    return faults, total_time


def test_a4_predictors(benchmark):
    n_slow = sum(1 for s in range(SESSIONS) if server_answer(s) == "slow")
    table = Table(
        f"A4: predictor quality over {SESSIONS} repeated sessions "
        f"({SESSIONS - n_slow} fast / {n_slow} slow answers)",
        ["predictor", "value faults", "total completion time"],
    )
    results = {}
    for kind in ["constant-fast", "constant-slow", "last-value", "majority"]:
        faults, total = run_campaign(kind)
        results[kind] = (faults, total)
        table.add(kind, faults, total)
    # majority converges on the skew; the anti-skew constant is the worst
    assert results["majority"][0] <= results["constant-slow"][0]
    assert results["constant-fast"][0] <= results["constant-slow"][0]
    table.note("the paper's 'run-time profiling' mechanism: learned "
               "predictors track the workload's bias and cut value faults")
    emit(table, "a4_predictors.txt")

    benchmark(lambda: run_campaign("majority"))
